#include "snapshot/engine_snapshot.h"

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/flat_storage.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "graph/csr.h"
#include "graph/csr_graph.h"
#include "snapshot/format.h"
#include "snapshot/reader.h"
#include "snapshot/writer.h"
#include "text/inverted_index.h"

namespace grasp::snapshot {
namespace {

using rdf::TermId;

/// Scalar engine state pinned in the kSectionMeta section. Field order is
/// part of the format (fixed-width fields, no implicit padding).
struct EngineMeta {
  std::uint64_t num_entities;
  std::uint64_t num_classes;
  std::uint64_t num_values;
  std::uint64_t total_entities;
  std::uint64_t total_relation_edges;
  std::uint64_t analyzer_min_token_length;
  std::uint32_t type_term;
  std::uint32_t subclass_term;
  std::uint32_t thing_node;
  std::uint32_t analyzer_flags;
};
static_assert(sizeof(EngineMeta) == 64);

// Analyzer flag bits.
constexpr std::uint32_t kFlagLowercase = 1u << 0;
constexpr std::uint32_t kFlagSplitCamelCase = 1u << 1;
constexpr std::uint32_t kFlagDropStopwords = 1u << 2;
constexpr std::uint32_t kFlagStem = 1u << 3;
constexpr std::uint32_t kFlagEmitCompound = 1u << 4;

/// Fixed-layout counterpart of the predicate-statistics map entries (the
/// one structure whose natural form is not already a flat POD array).
struct PredicateStatEntry {
  std::uint32_t predicate;
  std::uint32_t pad;
  double per_subject;
  double per_object;
};
static_assert(sizeof(PredicateStatEntry) == 24);

static_assert(std::is_trivially_copyable_v<rdf::Triple>);
static_assert(std::is_trivially_copyable_v<rdf::Vertex>);
static_assert(std::is_trivially_copyable_v<rdf::Edge>);
static_assert(std::is_trivially_copyable_v<summary::SummaryNode>);
static_assert(std::is_trivially_copyable_v<summary::SummaryEdge>);
static_assert(std::is_trivially_copyable_v<text::InvertedIndex::Posting>);
static_assert(std::is_trivially_copyable_v<keyword::KeywordIndex::ElementRecord>);
static_assert(std::is_trivially_copyable_v<keyword::KeywordIndex::ContextRecord>);
static_assert(
    std::is_trivially_copyable_v<keyword::KeywordIndex::NumericValueRecord>);

template <typename T>
std::span<const T> AsSpan(const std::vector<T>& v) {
  return std::span<const T>(v);
}

/// True when `term` can index the dictionary or is the synthetic `Thing`
/// class aggregating untyped entities.
bool TermInRange(TermId term, std::size_t num_terms, bool allow_thing,
                 bool allow_invalid) {
  if (term < num_terms) return true;
  if (allow_thing && term == rdf::kThingTerm) return true;
  if (allow_invalid && term == rdf::kInvalidTermId) return true;
  return false;
}

Status ValidateCsr(std::span<const std::uint32_t> offsets,
                   std::span<const std::uint32_t> values,
                   std::size_t num_buckets, std::size_t value_bound,
                   const char* what) {
  if (offsets.size() != num_buckets + 1) {
    return Status::InvalidArgument(
        StrFormat("snapshot: %s offsets have %zu entries, expected %zu", what,
                  offsets.size(), num_buckets + 1));
  }
  if (offsets[0] != 0) {
    return Status::InvalidArgument(
        StrFormat("snapshot: %s offsets do not start at 0", what));
  }
  for (std::size_t b = 1; b < offsets.size(); ++b) {
    if (offsets[b] < offsets[b - 1]) {
      return Status::InvalidArgument(
          StrFormat("snapshot: %s offsets not monotone", what));
    }
  }
  if (offsets[num_buckets] != values.size()) {
    return Status::InvalidArgument(
        StrFormat("snapshot: %s offsets end at %u, values have %zu", what,
                  offsets[num_buckets], values.size()));
  }
  for (std::uint32_t v : values) {
    if (v >= value_bound) {
      return Status::InvalidArgument(
          StrFormat("snapshot: %s value %u out of range (bound %zu)", what, v,
                    value_bound));
    }
  }
  return Status::Ok();
}

graph::CsrArray BorrowCsr(std::span<const std::uint32_t> offsets,
                          std::span<const std::uint32_t> values) {
  return graph::CsrArray::FromParts(FlatStorage<std::uint32_t>::Borrow(offsets),
                                    FlatStorage<std::uint32_t>::Borrow(values));
}

}  // namespace

Status WriteEngineSnapshot(const EngineParts& parts, const std::string& path) {
  const rdf::Dictionary& dict = *parts.dictionary;
  const rdf::TripleStore& store = *parts.store;
  const rdf::DataGraph& graph = *parts.data_graph;
  const summary::SummaryGraph& summary = *parts.summary;
  const keyword::KeywordIndex& kw = *parts.keyword_index;
  const text::InvertedIndex& ii = kw.inverted_index();
  GRASP_CHECK(store.finalized()) << "snapshot of an unfinalized store";

  // Meta scalars.
  const rdf::DataGraph::SnapshotScalars dscal = graph.snapshot_scalars();
  const summary::SummaryGraph::SnapshotScalars sscal =
      summary.snapshot_scalars();
  const text::AnalyzerOptions& analyzer = ii.analyzer_options();
  EngineMeta meta{};
  meta.num_entities = dscal.num_entities;
  meta.num_classes = dscal.num_classes;
  meta.num_values = dscal.num_values;
  meta.total_entities = sscal.total_entities;
  meta.total_relation_edges = sscal.total_relation_edges;
  meta.analyzer_min_token_length = analyzer.min_token_length;
  meta.type_term = dscal.type_term;
  meta.subclass_term = dscal.subclass_term;
  meta.thing_node = sscal.thing_node;
  meta.analyzer_flags = (analyzer.lowercase ? kFlagLowercase : 0) |
                        (analyzer.split_camel_case ? kFlagSplitCamelCase : 0) |
                        (analyzer.drop_stopwords ? kFlagDropStopwords : 0) |
                        (analyzer.stem ? kFlagStem : 0) |
                        (analyzer.emit_compound ? kFlagEmitCompound : 0);

  // Predicate statistics, sorted by predicate so images are deterministic.
  std::vector<PredicateStatEntry> pred_stats;
  pred_stats.reserve(store.predicate_stats().size());
  for (const auto& [predicate, stats] : store.predicate_stats()) {
    pred_stats.push_back(PredicateStatEntry{predicate, 0, stats.per_subject,
                                            stats.per_object});
  }
  std::sort(pred_stats.begin(), pred_stats.end(),
            [](const PredicateStatEntry& a, const PredicateStatEntry& b) {
              return a.predicate < b.predicate;
            });

  // Every index structure below is already flat (the whole point of the
  // FlatStorage refactor): the writer serializes the live arrays as-is.
  SnapshotWriter writer;
  writer.AddSection(kSectionMeta, std::span<const EngineMeta>(&meta, 1));
  writer.AddSection(kSectionDictKinds, dict.kinds_span());
  writer.AddSection(kSectionDictOffsets, dict.offsets_span());
  writer.AddSection(kSectionDictText, dict.text_span());
  writer.AddSection(kSectionTriples, store.triples());
  writer.AddSection(kSectionTriplePos, store.pos_permutation());
  writer.AddSection(kSectionTripleOsp, store.osp_permutation());
  writer.AddSection(kSectionPredicateStats, AsSpan(pred_stats));
  const auto& dcsr = graph.csr();
  writer.AddSection(kSectionDataNodes, dcsr.nodes());
  writer.AddSection(kSectionDataEdges, dcsr.edges());
  writer.AddSection(kSectionDataOutOffsets, dcsr.out_csr().offsets());
  writer.AddSection(kSectionDataOutValues, dcsr.out_csr().values());
  writer.AddSection(kSectionDataInOffsets, dcsr.in_csr().offsets());
  writer.AddSection(kSectionDataInValues, dcsr.in_csr().values());
  writer.AddSection(kSectionDataClassOffsets, graph.classes_csr().offsets());
  writer.AddSection(kSectionDataClassValues, graph.classes_csr().values());
  writer.AddSection(kSectionDataTermVertex, graph.vertex_of_term());
  const auto& scsr = summary.csr();
  writer.AddSection(kSectionSummaryNodes, scsr.nodes());
  writer.AddSection(kSectionSummaryEdges, scsr.edges());
  writer.AddSection(kSectionSummaryIncOffsets, scsr.incident_csr().offsets());
  writer.AddSection(kSectionSummaryIncValues, scsr.incident_csr().values());
  writer.AddSection(kSectionKwElements, kw.elements());
  writer.AddSection(kSectionKwContexts, kw.contexts());
  writer.AddSection(kSectionKwCtxClasses, kw.context_classes());
  writer.AddSection(kSectionKwCtxCounts, kw.context_counts());
  writer.AddSection(kSectionKwNumeric, kw.numeric_values());
  writer.AddSection(kSectionIiTermOffsets, ii.term_offsets());
  writer.AddSection(kSectionIiTermText, ii.term_blob());
  writer.AddSection(kSectionIiSortedTerms, ii.sorted_terms());
  writer.AddSection(kSectionIiPostingOffsets, ii.posting_offsets());
  writer.AddSection(kSectionIiPostings, ii.postings());
  writer.AddSection(kSectionIiDocTermCounts, ii.doc_term_counts());
  writer.AddSection(kSectionIiBucketOffsets, ii.bucket_offsets());
  writer.AddSection(kSectionIiBucketTerms, ii.bucket_terms());
  if (!parts.shard_plan.empty()) {
    GRASP_CHECK(parts.shard_plan.size() == graph.NumVertices() + 1)
        << "shard plan does not cover the vertex set";
    writer.AddSection(kSectionShardPlan, parts.shard_plan);
  }
  return writer.WriteFile(path);
}

namespace {

/// Validates a monotone length-delimiting offsets array over a blob.
template <typename OffsetT>
Status ValidateBlobOffsets(std::span<const OffsetT> offsets,
                           std::size_t blob_size, const char* what) {
  if (offsets.empty()) {
    return Status::InvalidArgument(
        StrFormat("snapshot: %s offsets empty", what));
  }
  if (offsets[0] != 0 || offsets[offsets.size() - 1] != blob_size) {
    return Status::InvalidArgument(
        StrFormat("snapshot: %s offsets do not delimit the blob", what));
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::InvalidArgument(
          StrFormat("snapshot: %s offsets not monotone", what));
    }
  }
  return Status::Ok();
}

}  // namespace

Result<LoadedEngineParts> ReadEngineSnapshot(const std::string& path) {
  WallTimer timer;
  // The checksum pass below touches every payload byte front-to-back;
  // MADV_WILLNEED lets the kernel run readahead ahead of it instead of
  // faulting one page at a time (the PR 4 cold-start measurement).
  GRASP_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      SnapshotReader::Open(path, MappedFile::Options{.willneed = true}));
  GRASP_ASSIGN_OR_RETURN(std::span<const EngineMeta> meta_span,
                         reader.Section<EngineMeta>(kSectionMeta));
  if (meta_span.size() != 1) {
    return Status::InvalidArgument("snapshot: meta section malformed");
  }
  const EngineMeta meta = meta_span[0];

  // --- Dictionary ---------------------------------------------------------
  GRASP_ASSIGN_OR_RETURN(std::span<const std::uint8_t> dict_kinds,
                         reader.Section<std::uint8_t>(kSectionDictKinds));
  GRASP_ASSIGN_OR_RETURN(std::span<const std::uint64_t> dict_offsets,
                         reader.Section<std::uint64_t>(kSectionDictOffsets));
  GRASP_ASSIGN_OR_RETURN(std::span<const char> dict_text,
                         reader.Section<char>(kSectionDictText));
  const std::size_t num_terms = dict_kinds.size();
  if (num_terms >= rdf::kThingTerm) {  // keep sentinel ids unreachable
    return Status::InvalidArgument("snapshot: term count out of range");
  }
  if (dict_offsets.size() != num_terms + 1) {
    return Status::InvalidArgument(
        "snapshot: dictionary offsets/kinds mismatch");
  }
  GRASP_RETURN_IF_ERROR(
      ValidateBlobOffsets(dict_offsets, dict_text.size(), "dictionary"));
  for (std::uint8_t kind : dict_kinds) {
    if (kind > static_cast<std::uint8_t>(rdf::TermKind::kLiteral)) {
      return Status::InvalidArgument("snapshot: bad term kind");
    }
  }

  // --- Triple store -------------------------------------------------------
  GRASP_ASSIGN_OR_RETURN(std::span<const rdf::Triple> triples,
                         reader.Section<rdf::Triple>(kSectionTriples));
  GRASP_ASSIGN_OR_RETURN(std::span<const std::uint32_t> pos,
                         reader.Section<std::uint32_t>(kSectionTriplePos));
  GRASP_ASSIGN_OR_RETURN(std::span<const std::uint32_t> osp,
                         reader.Section<std::uint32_t>(kSectionTripleOsp));
  GRASP_ASSIGN_OR_RETURN(
      std::span<const PredicateStatEntry> pred_stats,
      reader.Section<PredicateStatEntry>(kSectionPredicateStats));
  if (pos.size() != triples.size() || osp.size() != triples.size()) {
    return Status::InvalidArgument("snapshot: permutation size mismatch");
  }
  for (const rdf::Triple& t : triples) {
    if (t.subject >= num_terms || t.predicate >= num_terms ||
        t.object >= num_terms) {
      return Status::InvalidArgument("snapshot: triple term out of range");
    }
  }
  for (std::size_t i = 0; i < pos.size(); ++i) {
    if (pos[i] >= triples.size() || osp[i] >= triples.size()) {
      return Status::InvalidArgument(
          "snapshot: permutation entry out of range");
    }
  }
  std::vector<std::pair<TermId, rdf::TripleStore::PredicateStats>> stats;
  stats.reserve(pred_stats.size());
  for (const PredicateStatEntry& e : pred_stats) {
    if (e.predicate >= num_terms) {
      return Status::InvalidArgument(
          "snapshot: predicate statistic out of range");
    }
    stats.emplace_back(
        e.predicate,
        rdf::TripleStore::PredicateStats{e.per_subject, e.per_object});
  }

  // --- Data graph ---------------------------------------------------------
  GRASP_ASSIGN_OR_RETURN(std::span<const rdf::Vertex> data_nodes,
                         reader.Section<rdf::Vertex>(kSectionDataNodes));
  GRASP_ASSIGN_OR_RETURN(std::span<const rdf::Edge> data_edges,
                         reader.Section<rdf::Edge>(kSectionDataEdges));
  GRASP_ASSIGN_OR_RETURN(std::span<const std::uint32_t> out_offsets,
                         reader.Section<std::uint32_t>(kSectionDataOutOffsets));
  GRASP_ASSIGN_OR_RETURN(std::span<const std::uint32_t> out_values,
                         reader.Section<std::uint32_t>(kSectionDataOutValues));
  GRASP_ASSIGN_OR_RETURN(std::span<const std::uint32_t> in_offsets,
                         reader.Section<std::uint32_t>(kSectionDataInOffsets));
  GRASP_ASSIGN_OR_RETURN(std::span<const std::uint32_t> in_values,
                         reader.Section<std::uint32_t>(kSectionDataInValues));
  GRASP_ASSIGN_OR_RETURN(
      std::span<const std::uint32_t> class_offsets,
      reader.Section<std::uint32_t>(kSectionDataClassOffsets));
  GRASP_ASSIGN_OR_RETURN(
      std::span<const std::uint32_t> class_values,
      reader.Section<std::uint32_t>(kSectionDataClassValues));
  GRASP_ASSIGN_OR_RETURN(
      std::span<const rdf::VertexId> term_vertex,
      reader.Section<rdf::VertexId>(kSectionDataTermVertex));
  for (const rdf::Vertex& v : data_nodes) {
    if (v.term >= num_terms ||
        static_cast<std::uint8_t>(v.kind) >
            static_cast<std::uint8_t>(rdf::VertexKind::kValue)) {
      return Status::InvalidArgument("snapshot: data vertex malformed");
    }
  }
  for (const rdf::Edge& e : data_edges) {
    if (e.label >= num_terms || e.from >= data_nodes.size() ||
        e.to >= data_nodes.size() ||
        static_cast<std::uint8_t>(e.kind) >
            static_cast<std::uint8_t>(rdf::EdgeKind::kSubclass)) {
      return Status::InvalidArgument("snapshot: data edge malformed");
    }
  }
  GRASP_RETURN_IF_ERROR(ValidateCsr(out_offsets, out_values, data_nodes.size(),
                                    data_edges.size(), "data out-adjacency"));
  GRASP_RETURN_IF_ERROR(ValidateCsr(in_offsets, in_values, data_nodes.size(),
                                    data_edges.size(), "data in-adjacency"));
  GRASP_RETURN_IF_ERROR(ValidateCsr(class_offsets, class_values,
                                    data_nodes.size(), data_nodes.size(),
                                    "entity-class"));
  if (meta.num_entities + meta.num_classes + meta.num_values !=
      data_nodes.size()) {
    return Status::InvalidArgument(
        "snapshot: vertex partition counts inconsistent");
  }
  if (term_vertex.size() != num_terms) {
    return Status::InvalidArgument(
        "snapshot: term-vertex table does not match dictionary");
  }
  for (rdf::VertexId v : term_vertex) {
    if (v != rdf::kInvalidVertexId && v >= data_nodes.size()) {
      return Status::InvalidArgument(
          "snapshot: term-vertex entry out of range");
    }
  }
  if (!TermInRange(meta.type_term, num_terms, false, true) ||
      !TermInRange(meta.subclass_term, num_terms, false, true)) {
    return Status::InvalidArgument("snapshot: vocabulary terms out of range");
  }

  // --- Summary graph ------------------------------------------------------
  GRASP_ASSIGN_OR_RETURN(
      std::span<const summary::SummaryNode> summary_nodes,
      reader.Section<summary::SummaryNode>(kSectionSummaryNodes));
  GRASP_ASSIGN_OR_RETURN(
      std::span<const summary::SummaryEdge> summary_edges,
      reader.Section<summary::SummaryEdge>(kSectionSummaryEdges));
  GRASP_ASSIGN_OR_RETURN(
      std::span<const std::uint32_t> inc_offsets,
      reader.Section<std::uint32_t>(kSectionSummaryIncOffsets));
  GRASP_ASSIGN_OR_RETURN(
      std::span<const std::uint32_t> inc_values,
      reader.Section<std::uint32_t>(kSectionSummaryIncValues));
  for (const summary::SummaryNode& n : summary_nodes) {
    // Only class and Thing nodes exist in the base summary (value and
    // artificial nodes are per-query augmentations).
    if (!TermInRange(n.term, num_terms, true, false) ||
        static_cast<std::uint8_t>(n.kind) >
            static_cast<std::uint8_t>(summary::NodeKind::kThing)) {
      return Status::InvalidArgument("snapshot: summary node malformed");
    }
  }
  for (const summary::SummaryEdge& e : summary_edges) {
    if (e.label >= num_terms || e.from >= summary_nodes.size() ||
        e.to >= summary_nodes.size() ||
        static_cast<std::uint8_t>(e.kind) >
            static_cast<std::uint8_t>(summary::SummaryEdgeKind::kSubclass)) {
      return Status::InvalidArgument("snapshot: summary edge malformed");
    }
  }
  GRASP_RETURN_IF_ERROR(ValidateCsr(inc_offsets, inc_values,
                                    summary_nodes.size(), summary_edges.size(),
                                    "summary incidence"));
  if (meta.thing_node != summary::kInvalidNodeId &&
      meta.thing_node >= summary_nodes.size()) {
    return Status::InvalidArgument("snapshot: thing node out of range");
  }

  // --- Keyword index ------------------------------------------------------
  using ElementRecord = keyword::KeywordIndex::ElementRecord;
  using ContextRecord = keyword::KeywordIndex::ContextRecord;
  using NumericValueRecord = keyword::KeywordIndex::NumericValueRecord;
  GRASP_ASSIGN_OR_RETURN(std::span<const ElementRecord> kw_elements,
                         reader.Section<ElementRecord>(kSectionKwElements));
  GRASP_ASSIGN_OR_RETURN(std::span<const ContextRecord> kw_contexts,
                         reader.Section<ContextRecord>(kSectionKwContexts));
  GRASP_ASSIGN_OR_RETURN(std::span<const std::uint32_t> kw_ctx_classes,
                         reader.Section<std::uint32_t>(kSectionKwCtxClasses));
  GRASP_ASSIGN_OR_RETURN(std::span<const std::uint64_t> kw_ctx_counts,
                         reader.Section<std::uint64_t>(kSectionKwCtxCounts));
  GRASP_ASSIGN_OR_RETURN(std::span<const NumericValueRecord> kw_numeric,
                         reader.Section<NumericValueRecord>(kSectionKwNumeric));
  if (kw_ctx_counts.size() != kw_ctx_classes.size()) {
    return Status::InvalidArgument(
        "snapshot: context class/count arrays diverge");
  }
  for (std::uint32_t cls : kw_ctx_classes) {
    if (!TermInRange(cls, num_terms, true, false)) {
      return Status::InvalidArgument("snapshot: context class out of range");
    }
  }
  for (const ContextRecord& c : kw_contexts) {
    if (c.attribute >= num_terms || c.entry_begin > c.entry_end ||
        c.entry_end > kw_ctx_classes.size()) {
      return Status::InvalidArgument("snapshot: keyword context malformed");
    }
  }
  for (const ElementRecord& e : kw_elements) {
    if (e.term >= num_terms ||
        e.kind > static_cast<std::uint32_t>(
                     keyword::KeywordMatch::Kind::kAttributeLabel) ||
        e.ctx_begin > e.ctx_end || e.ctx_end > kw_contexts.size()) {
      return Status::InvalidArgument("snapshot: keyword element malformed");
    }
  }
  for (const NumericValueRecord& n : kw_numeric) {
    if (n.element >= kw_elements.size()) {
      return Status::InvalidArgument(
          "snapshot: numeric value element out of range");
    }
  }

  // --- Inverted index -----------------------------------------------------
  GRASP_ASSIGN_OR_RETURN(std::span<const std::uint32_t> ii_term_offsets,
                         reader.Section<std::uint32_t>(kSectionIiTermOffsets));
  GRASP_ASSIGN_OR_RETURN(std::span<const char> ii_term_text,
                         reader.Section<char>(kSectionIiTermText));
  GRASP_ASSIGN_OR_RETURN(std::span<const std::uint32_t> ii_sorted_terms,
                         reader.Section<std::uint32_t>(kSectionIiSortedTerms));
  GRASP_ASSIGN_OR_RETURN(
      std::span<const std::uint32_t> ii_posting_offsets,
      reader.Section<std::uint32_t>(kSectionIiPostingOffsets));
  GRASP_ASSIGN_OR_RETURN(
      std::span<const text::InvertedIndex::Posting> ii_postings,
      reader.Section<text::InvertedIndex::Posting>(kSectionIiPostings));
  GRASP_ASSIGN_OR_RETURN(
      std::span<const std::uint32_t> ii_doc_term_counts,
      reader.Section<std::uint32_t>(kSectionIiDocTermCounts));
  GRASP_RETURN_IF_ERROR(
      ValidateBlobOffsets(ii_term_offsets, ii_term_text.size(), "vocabulary"));
  if (ii_posting_offsets.size() != ii_term_offsets.size()) {
    return Status::InvalidArgument(
        "snapshot: postings offsets/vocabulary mismatch");
  }
  GRASP_RETURN_IF_ERROR(ValidateBlobOffsets(ii_posting_offsets,
                                            ii_postings.size(), "postings"));
  const std::size_t vocab = ii_term_offsets.size() - 1;
  if (ii_sorted_terms.size() != vocab) {
    return Status::InvalidArgument(
        "snapshot: sorted-term permutation does not match vocabulary");
  }
  for (std::uint32_t t : ii_sorted_terms) {
    if (t >= vocab) {
      return Status::InvalidArgument(
          "snapshot: sorted-term entry out of range");
    }
  }
  if (ii_doc_term_counts.size() != kw_elements.size()) {
    return Status::InvalidArgument(
        "snapshot: document count does not match keyword elements");
  }
  for (const text::InvertedIndex::Posting& p : ii_postings) {
    if (p.doc >= ii_doc_term_counts.size()) {
      return Status::InvalidArgument("snapshot: posting document out of range");
    }
  }
  GRASP_ASSIGN_OR_RETURN(
      std::span<const std::uint32_t> ii_bucket_offsets,
      reader.Section<std::uint32_t>(kSectionIiBucketOffsets));
  GRASP_ASSIGN_OR_RETURN(std::span<const std::uint32_t> ii_bucket_terms,
                         reader.Section<std::uint32_t>(kSectionIiBucketTerms));
  GRASP_RETURN_IF_ERROR(ValidateBlobOffsets(
      ii_bucket_offsets, ii_bucket_terms.size(), "length-bucket"));
  if (ii_bucket_terms.size() != vocab) {
    return Status::InvalidArgument(
        "snapshot: length-bucket terms do not match vocabulary");
  }
  {
    // Each term index must appear exactly once, inside the bucket of its
    // own text length — the fuzzy prefilter derives boundary bytes and
    // signatures assuming exactly that placement.
    std::vector<bool> seen(vocab, false);
    std::size_t bucket = 0;
    for (std::size_t i = 0; i < ii_bucket_terms.size(); ++i) {
      const std::uint32_t t = ii_bucket_terms[i];
      if (t >= vocab || seen[t]) {
        return Status::InvalidArgument(
            "snapshot: length-bucket terms are not a permutation");
      }
      seen[t] = true;
      while (bucket + 2 < ii_bucket_offsets.size() &&
             i >= ii_bucket_offsets[bucket + 1]) {
        ++bucket;
      }
      const std::size_t term_len = ii_term_offsets[t + 1] - ii_term_offsets[t];
      if (term_len != bucket) {
        return Status::InvalidArgument(
            "snapshot: term bucketed under the wrong length");
      }
    }
  }

  // --- Shard plan (optional section; absent on unsharded builds) ----------
  std::span<const std::uint32_t> shard_plan;
  if (reader.HasSection(kSectionShardPlan)) {
    GRASP_ASSIGN_OR_RETURN(std::span<const std::uint32_t> plan,
                           reader.Section<std::uint32_t>(kSectionShardPlan));
    if (plan.size() != data_nodes.size() + 1 || plan[0] == 0) {
      return Status::InvalidArgument("snapshot: shard plan malformed");
    }
    for (std::size_t i = 1; i < plan.size(); ++i) {
      if (plan[i] >= plan[0]) {
        return Status::InvalidArgument(
            "snapshot: shard plan entry out of range");
      }
    }
    shard_plan = plan;
  }

  // --- Materialize --------------------------------------------------------
  // Everything below is linear assembly of already-validated data; no
  // further reads can go out of bounds.
  LoadedEngineParts parts;
  parts.analyzer_options.lowercase = (meta.analyzer_flags & kFlagLowercase);
  parts.analyzer_options.split_camel_case =
      (meta.analyzer_flags & kFlagSplitCamelCase);
  parts.analyzer_options.drop_stopwords =
      (meta.analyzer_flags & kFlagDropStopwords);
  parts.analyzer_options.stem = (meta.analyzer_flags & kFlagStem);
  parts.analyzer_options.emit_compound =
      (meta.analyzer_flags & kFlagEmitCompound);
  parts.analyzer_options.min_token_length =
      static_cast<std::size_t>(meta.analyzer_min_token_length);

  parts.dictionary =
      std::make_unique<rdf::Dictionary>(rdf::Dictionary::FromSnapshotParts(
          FlatStorage<std::uint8_t>::Borrow(dict_kinds),
          FlatStorage<std::uint64_t>::Borrow(dict_offsets),
          FlatStorage<char>::Borrow(dict_text)));
  parts.store =
      std::make_unique<rdf::TripleStore>(rdf::TripleStore::FromSnapshotParts(
          FlatStorage<rdf::Triple>::Borrow(triples),
          FlatStorage<std::uint32_t>::Borrow(pos),
          FlatStorage<std::uint32_t>::Borrow(osp), std::move(stats)));

  rdf::DataGraph::SnapshotScalars dscal;
  dscal.num_entities = static_cast<std::size_t>(meta.num_entities);
  dscal.num_classes = static_cast<std::size_t>(meta.num_classes);
  dscal.num_values = static_cast<std::size_t>(meta.num_values);
  dscal.type_term = meta.type_term;
  dscal.subclass_term = meta.subclass_term;
  parts.data_graph =
      std::make_unique<rdf::DataGraph>(rdf::DataGraph::FromSnapshotParts(
          *parts.dictionary,
          graph::CsrGraph<rdf::Vertex, rdf::Edge>::FromParts(
              FlatStorage<rdf::Vertex>::Borrow(data_nodes),
              FlatStorage<rdf::Edge>::Borrow(data_edges),
              BorrowCsr(out_offsets, out_values),
              BorrowCsr(in_offsets, in_values), graph::CsrArray()),
          BorrowCsr(class_offsets, class_values),
          FlatStorage<rdf::VertexId>::Borrow(term_vertex), dscal));

  summary::SummaryGraph::SnapshotScalars sscal;
  sscal.thing_node = meta.thing_node;
  sscal.total_entities = meta.total_entities;
  sscal.total_relation_edges = meta.total_relation_edges;
  parts.summary = std::make_unique<summary::SummaryGraph>(
      summary::SummaryGraph::FromSnapshotParts(
          summary::SummaryGraph::Csr::FromParts(
              FlatStorage<summary::SummaryNode>::Borrow(summary_nodes),
              FlatStorage<summary::SummaryEdge>::Borrow(summary_edges),
              graph::CsrArray(), graph::CsrArray(),
              BorrowCsr(inc_offsets, inc_values)),
          sscal));

  // The entire keyword index — vocabulary blob, sorted permutation,
  // postings CSR, element/context tables, numeric range index — is
  // borrowed zero-copy from the mapping.
  parts.keyword_index = std::make_unique<keyword::KeywordIndex>(
      keyword::KeywordIndex::FromSnapshotParts(
          text::InvertedIndex::FromSnapshotParts(
              parts.analyzer_options,
              FlatStorage<std::uint32_t>::Borrow(ii_term_offsets),
              FlatStorage<char>::Borrow(ii_term_text),
              FlatStorage<std::uint32_t>::Borrow(ii_sorted_terms),
              FlatStorage<std::uint32_t>::Borrow(ii_posting_offsets),
              FlatStorage<text::InvertedIndex::Posting>::Borrow(ii_postings),
              FlatStorage<std::uint32_t>::Borrow(ii_doc_term_counts),
              FlatStorage<std::uint32_t>::Borrow(ii_bucket_offsets),
              FlatStorage<std::uint32_t>::Borrow(ii_bucket_terms)),
          FlatStorage<ElementRecord>::Borrow(kw_elements),
          FlatStorage<ContextRecord>::Borrow(kw_contexts),
          FlatStorage<TermId>::Borrow(kw_ctx_classes),
          FlatStorage<std::uint64_t>::Borrow(kw_ctx_counts),
          FlatStorage<NumericValueRecord>::Borrow(kw_numeric)));

  parts.shard_plan = shard_plan;  // borrows the mapping, like everything else
  parts.mapping = std::move(reader).TakeMapping();
  parts.load_millis = timer.ElapsedMillis();
  return parts;
}

}  // namespace grasp::snapshot
