#include "snapshot/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"
#include "common/logging.h"

namespace grasp::snapshot {

namespace {

/// Applies one madvise hint, honouring the "snapshot.madvise" failpoint.
/// Advisory by contract: the return value only feeds the caller's logging
/// decision — mapping correctness never depends on the kernel taking it.
bool Advise(const unsigned char* data, std::size_t size, int advice) {
  if (failpoint::ShouldFail("snapshot.madvise")) {
    errno = EINVAL;
    return false;
  }
  return ::madvise(const_cast<unsigned char*>(data), size, advice) == 0;
}

}  // namespace

Result<MappedFile> MappedFile::Open(const std::string& path, Options options) {
  // Failpoint: a forced transient mmap failure, for the snapshot-open
  // retry/backoff tests (kIoError is the one retryable open outcome).
  if (failpoint::ShouldFail("snapshot.mmap")) {
    return Status::IoError("failpoint snapshot.mmap: injected mmap failure for " +
                           path);
  }
  // EINTR retry: a signal landing mid-open (a SIGTERM starting a graceful
  // drain is the routine case) must not surface as a spurious open failure.
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("cannot stat " + path + ": " + std::strerror(err));
  }
  MappedFile file;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IoError("cannot mmap " + path + ": " +
                             std::strerror(err));
    }
    file.data_ = static_cast<const unsigned char*>(addr);
    if (options.willneed && !Advise(file.data_, file.size_, MADV_WILLNEED)) {
      GRASP_LOG(Warning) << "madvise(MADV_WILLNEED) on " << path
                         << " failed: " << std::strerror(errno)
                         << " (continuing without readahead hint)";
    }
#ifdef MADV_HUGEPAGE
    if (options.hugepages && !Advise(file.data_, file.size_, MADV_HUGEPAGE)) {
      GRASP_LOG(Warning) << "madvise(MADV_HUGEPAGE) on " << path
                         << " failed: " << std::strerror(errno)
                         << " (continuing with base pages)";
    }
#endif
  }
  // The mapping keeps its own reference to the file; the descriptor is no
  // longer needed.
  ::close(fd);
  return file;
}

void MappedFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
}

}  // namespace grasp::snapshot
