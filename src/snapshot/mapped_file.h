#ifndef GRASP_SNAPSHOT_MAPPED_FILE_H_
#define GRASP_SNAPSHOT_MAPPED_FILE_H_

#include <cstddef>
#include <string>
#include <utility>

#include "common/status.h"

namespace grasp::snapshot {

/// RAII read-only memory mapping of a whole file. The mapping address is
/// stable for the lifetime of the object (moves transfer ownership without
/// remapping), so borrowed FlatStorage views into it survive as long as the
/// MappedFile does.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { Reset(); }

  MappedFile(MappedFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  struct Options {
    /// madvise(MADV_WILLNEED) the whole mapping right after mmap, so the
    /// kernel starts readahead before the first checksum pass touches the
    /// pages. Cuts the cold-start fault storm on spinning/remote storage;
    /// a no-op cost on an already-warm page cache.
    bool willneed = false;
    /// Additionally hint MADV_HUGEPAGE (where the kernel supports it) so
    /// large snapshot sections map with fewer TLB entries. Advisory only.
    bool hugepages = false;
  };

  /// Maps `path` read-only. An empty file yields an empty mapping (data()
  /// == nullptr, size() == 0), which header validation then rejects.
  /// madvise hints are best-effort: the kernel refusing one (test-forced
  /// via the "snapshot.madvise" failpoint) never fails the open.
  static Result<MappedFile> Open(const std::string& path, Options options);
  static Result<MappedFile> Open(const std::string& path) {
    return Open(path, Options{});
  }

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  void Reset();

  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace grasp::snapshot

#endif  // GRASP_SNAPSHOT_MAPPED_FILE_H_
