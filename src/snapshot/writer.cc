#include "snapshot/writer.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/logging.h"

namespace grasp::snapshot {

void SnapshotWriter::AddRaw(std::uint32_t id, std::uint32_t elem_size,
                            const void* data, std::uint64_t bytes) {
  for (const Pending& p : sections_) {
    GRASP_CHECK_NE(p.id, id) << "duplicate snapshot section";
  }
  GRASP_CHECK_LT(sections_.size(), static_cast<std::size_t>(kMaxSections));
  sections_.push_back(Pending{id, elem_size, data, bytes});
}

Status SnapshotWriter::WriteFile(const std::string& path) const {
  // Lay out: header, section table, then payloads each on a page boundary.
  const std::uint64_t table_begin = sizeof(FileHeader);
  const std::uint64_t table_bytes = sections_.size() * sizeof(SectionEntry);
  std::uint64_t cursor = table_begin + table_bytes;
  std::vector<SectionEntry> table;
  table.reserve(sections_.size());
  for (const Pending& p : sections_) {
    cursor = (cursor + kPageSize - 1) / kPageSize * kPageSize;
    table.push_back(SectionEntry{p.id, p.elem_size, cursor, p.bytes,
                                 Checksum64(p.data, p.bytes)});
    cursor += p.bytes;
  }

  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.format_version = kFormatVersion;
  header.section_count = static_cast<std::uint32_t>(sections_.size());
  header.file_size = cursor;
  header.table_checksum = Checksum64(table.data(), table_bytes);
  header.reserved = 0;

  // Write to a scratch file and rename into place: a crash, full disk or
  // concurrent Open() mid-write must never destroy the previous good image
  // at `path` (rename on the same filesystem is atomic on POSIX).
  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open " + tmp_path + " for writing");
    }
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(table.data()),
              static_cast<std::streamsize>(table_bytes));
    std::uint64_t written = table_begin + table_bytes;
    static constexpr char kZeros[kPageSize] = {};
    for (std::size_t i = 0; i < sections_.size(); ++i) {
      const std::uint64_t pad = table[i].offset - written;
      out.write(kZeros, static_cast<std::streamsize>(pad));
      out.write(static_cast<const char*>(sections_[i].data),
                static_cast<std::streamsize>(sections_[i].bytes));
      written = table[i].offset + table[i].byte_length;
    }
    out.flush();
    if (!out) {
      std::remove(tmp_path.c_str());
      return Status::IoError("short write to " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot rename " + tmp_path + " to " + path);
  }
  return Status::Ok();
}

}  // namespace grasp::snapshot
