#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "query/conjunctive_query.h"
#include "query/evaluator.h"
#include "query/sparql_parser.h"
#include "rdf/data_graph.h"
#include "test_util.h"

namespace grasp::query {
namespace {

rdf::TermId TypeTerm(rdf::Dictionary* dictionary) {
  return dictionary->InternIri(rdf::Vocabulary().type_iri);
}

// ----------------------------------------------------------------- basics --

TEST(SparqlParserTest, SingleTriplePattern) {
  rdf::Dictionary dict;
  auto parsed = ParseSparql(
      "SELECT ?x WHERE { ?x <http://ex.org/name> \"AIFB\" . }", &dict);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->query.atoms().size(), 1u);
  EXPECT_EQ(parsed->variable_names, (std::vector<std::string>{"x"}));
  ASSERT_EQ(parsed->selected.size(), 1u);
  const Atom& atom = parsed->query.atoms()[0];
  EXPECT_TRUE(atom.subject.is_variable);
  EXPECT_FALSE(atom.object.is_variable);
  EXPECT_EQ(dict.text(atom.object.term), "AIFB");
  EXPECT_EQ(dict.kind(atom.object.term), rdf::TermKind::kLiteral);
}

TEST(SparqlParserTest, SelectStar) {
  rdf::Dictionary dict;
  auto parsed = ParseSparql(
      "SELECT * WHERE { ?s <http://ex.org/p> ?o }", &dict);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->selected.empty());  // empty projection = all variables
  EXPECT_EQ(parsed->query.num_variables(), 2u);
}

TEST(SparqlParserTest, KeywordsCaseInsensitive) {
  rdf::Dictionary dict;
  auto parsed = ParseSparql(
      "select ?x where { ?x <http://ex.org/p> ?y }", &dict);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST(SparqlParserTest, TypeAbbreviation) {
  rdf::Dictionary dict;
  auto parsed = ParseSparql(
      "SELECT ?x WHERE { ?x a <http://ex.org/Publication> }", &dict);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->query.atoms()[0].predicate, TypeTerm(&dict));
}

TEST(SparqlParserTest, SharedVariablesGetOneId) {
  rdf::Dictionary dict;
  auto parsed = ParseSparql(
      "SELECT ?x ?y WHERE { ?x <http://ex.org/p> ?y . "
      "?y <http://ex.org/q> ?x }",
      &dict);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->query.num_variables(), 2u);
  const auto& atoms = parsed->query.atoms();
  EXPECT_EQ(atoms[0].subject.var, atoms[1].object.var);
  EXPECT_EQ(atoms[0].object.var, atoms[1].subject.var);
}

TEST(SparqlParserTest, LastDotOptional) {
  rdf::Dictionary dict;
  EXPECT_TRUE(ParseSparql("SELECT ?x WHERE { ?x <http://e/p> \"v\" }", &dict)
                  .ok());
  EXPECT_TRUE(ParseSparql("SELECT ?x WHERE { ?x <http://e/p> \"v\" . }", &dict)
                  .ok());
}

TEST(SparqlParserTest, LiteralEscapes) {
  rdf::Dictionary dict;
  auto parsed = ParseSparql(
      R"(SELECT ?x WHERE { ?x <http://e/p> "say \"hi\"\n" })", &dict);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(dict.text(parsed->query.atoms()[0].object.term), "say \"hi\"\n");
}

TEST(SparqlParserTest, LanguageTagAndDatatypeDropped) {
  rdf::Dictionary dict;
  auto with_lang = ParseSparql(
      R"(SELECT ?x WHERE { ?x <http://e/p> "hallo"@de })", &dict);
  ASSERT_TRUE(with_lang.ok());
  EXPECT_EQ(dict.text(with_lang->query.atoms()[0].object.term), "hallo");
  auto with_type = ParseSparql(
      R"(SELECT ?x WHERE { ?x <http://e/p> "5"^^<http://www.w3.org/2001/XMLSchema#int> })",
      &dict);
  ASSERT_TRUE(with_type.ok());
  EXPECT_EQ(dict.text(with_type->query.atoms()[0].object.term), "5");
}

TEST(SparqlParserTest, CommentsIgnored) {
  rdf::Dictionary dict;
  auto parsed = ParseSparql(
      "# top comment\nSELECT ?x WHERE { # pattern\n ?x <http://e/p> ?y }",
      &dict);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

// ----------------------------------------------------------------- errors --

struct BadQueryCase {
  const char* name;
  const char* text;
};

class SparqlParserErrorTest : public ::testing::TestWithParam<BadQueryCase> {};

TEST_P(SparqlParserErrorTest, Rejected) {
  rdf::Dictionary dict;
  auto parsed = ParseSparql(GetParam().text, &dict);
  ASSERT_FALSE(parsed.ok()) << GetParam().name;
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, SparqlParserErrorTest,
    ::testing::Values(
        BadQueryCase{"empty", ""},
        BadQueryCase{"no_select", "WHERE { ?x <http://e/p> ?y }"},
        BadQueryCase{"no_projection", "SELECT WHERE { ?x <http://e/p> ?y }"},
        BadQueryCase{"no_where", "SELECT ?x { ?x <http://e/p> ?y }"},
        BadQueryCase{"missing_brace", "SELECT ?x WHERE ?x <http://e/p> ?y }"},
        BadQueryCase{"unterminated", "SELECT ?x WHERE { ?x <http://e/p> ?y"},
        BadQueryCase{"empty_pattern", "SELECT ?x WHERE { }"},
        BadQueryCase{"variable_predicate",
                     "SELECT ?x WHERE { ?x ?p ?y }"},
        BadQueryCase{"literal_subject",
                     "SELECT ?x WHERE { \"v\" <http://e/p> ?x }"},
        BadQueryCase{"unknown_selected_variable",
                     "SELECT ?zz WHERE { ?x <http://e/p> ?y }"},
        BadQueryCase{"unterminated_iri",
                     "SELECT ?x WHERE { ?x <http://e/p ?y }"},
        BadQueryCase{"unterminated_literal",
                     "SELECT ?x WHERE { ?x <http://e/p> \"v }"},
        BadQueryCase{"missing_dot_between_patterns",
                     "SELECT ?x WHERE { ?x <http://e/p> ?y ?y <http://e/q> "
                     "?x }"},
        BadQueryCase{"trailing_garbage",
                     "SELECT ?x WHERE { ?x <http://e/p> ?y } LIMIT 5"}),
    [](const ::testing::TestParamInfo<BadQueryCase>& info) {
      return info.param.name;
    });

// ------------------------------------------------------------- round trip --

TEST(SparqlRoundTripTest, PrinterOutputParsesBackIsomorphic) {
  auto dataset = grasp::testing::MakeFigure1Dataset();
  ConjunctiveQuery q;
  const VarId x = q.NewVariable(), y = q.NewVariable(), z = q.NewVariable();
  auto iri = [&](const char* local) {
    return dataset.dictionary.InternIri(std::string(grasp::testing::kEx) +
                                        local);
  };
  q.AddAtom({TypeTerm(&dataset.dictionary), QueryTerm::Variable(x),
             QueryTerm::Constant(iri("Publication"))});
  q.AddAtom({iri("year"), QueryTerm::Variable(x),
             QueryTerm::Constant(dataset.dictionary.InternLiteral("2006"))});
  q.AddAtom({iri("author"), QueryTerm::Variable(x), QueryTerm::Variable(y)});
  q.AddAtom({iri("worksAt"), QueryTerm::Variable(y), QueryTerm::Variable(z)});

  const std::string sparql = q.ToSparql(dataset.dictionary);
  auto parsed = ParseSparql(sparql, &dataset.dictionary);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << sparql;
  EXPECT_TRUE(Isomorphic(parsed->query, q))
      << "printed:\n" << sparql << "\nreparsed:\n"
      << parsed->query.ToSparql(dataset.dictionary);
  // Projection covers every variable, in order.
  EXPECT_EQ(parsed->selected.size(), 3u);
}

/// Property: random conjunctive queries survive print -> parse -> compare.
class SparqlRoundTripPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparqlRoundTripPropertyTest, RandomQueriesRoundTrip) {
  Rng rng(GetParam());
  rdf::Dictionary dict;
  std::vector<rdf::TermId> predicates, iris, literals;
  for (int i = 0; i < 5; ++i) {
    predicates.push_back(
        dict.InternIri(StrFormat("http://ex.org/p%d", i)));
    iris.push_back(dict.InternIri(StrFormat("http://ex.org/e%d", i)));
    literals.push_back(dict.InternLiteral(StrFormat("value %d\n\"q\"", i)));
  }
  for (int trial = 0; trial < 20; ++trial) {
    ConjunctiveQuery q;
    const int num_vars = 1 + static_cast<int>(rng.NextBelow(4));
    std::vector<VarId> vars;
    for (int i = 0; i < num_vars; ++i) vars.push_back(q.NewVariable());
    const int num_atoms = 1 + static_cast<int>(rng.NextBelow(5));
    bool var_subject_somewhere = false;
    for (int i = 0; i < num_atoms; ++i) {
      // Subjects: variable or IRI (literal subjects are invalid SPARQL).
      QueryTerm subject =
          rng.NextBernoulli(0.8)
              ? QueryTerm::Variable(vars[rng.NextBelow(vars.size())])
              : QueryTerm::Constant(iris[rng.NextBelow(iris.size())]);
      var_subject_somewhere |= subject.is_variable;
      QueryTerm object;
      const double dice = rng.NextDouble();
      if (dice < 0.5) {
        object = QueryTerm::Variable(vars[rng.NextBelow(vars.size())]);
      } else if (dice < 0.75) {
        object = QueryTerm::Constant(iris[rng.NextBelow(iris.size())]);
      } else {
        object = QueryTerm::Constant(literals[rng.NextBelow(literals.size())]);
      }
      q.AddAtom({predicates[rng.NextBelow(predicates.size())], subject,
                 object});
    }
    const std::string sparql = q.ToSparql(dict);
    auto parsed = ParseSparql(sparql, &dict);
    ASSERT_TRUE(parsed.ok())
        << parsed.status().ToString() << "\nquery was:\n" << sparql;
    EXPECT_TRUE(Isomorphic(parsed->query, q)) << sparql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparqlRoundTripPropertyTest,
                         ::testing::Values(3, 13, 23, 33, 43, 53, 63, 73));

/// Integration: a parsed query evaluates identically to the built query.
TEST(SparqlRoundTripTest, ParsedQueryEvaluatesLikeOriginal) {
  auto dataset = grasp::testing::MakeFigure1Dataset();
  const std::string text =
      "SELECT ?x ?y WHERE {\n"
      "  ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
      "<http://example.org/Researcher> .\n"
      "  ?x <http://example.org/worksAt> ?y .\n"
      "}";
  auto parsed = ParseSparql(text, &dataset.dictionary);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto result = Evaluate(dataset.store, parsed->query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);  // re1 and re2, both at inst1
}

}  // namespace
}  // namespace grasp::query
