// Invariant and regression tests for the BLINKS-style graph partitioner,
// which the sharding layer now depends on (ShardPlan derives per-vertex
// ownership from PartitionGraph):
//
//  - structural invariants on arbitrary graphs: at most the requested
//    number of blocks, every block non-empty, every assignment in range,
//    every vertex assigned — including disconnected graphs and the
//    num_blocks > n edge case (both bit the original BfsSeed, whose
//    frontier flush could strand vertices in block 0);
//  - determinism: identical inputs yield identical partitions (they are
//    persisted in snapshots and diffed across processes in CI, so any
//    hash-order dependence is a bug, not noise);
//  - refinement quality: kGreedy only ever moves a vertex toward a block
//    it has strictly more links to, so its cut is never worse than the
//    kBfs seed it refines;
//  - CutSize kind-awareness: the all-kinds overload counts attribute/type
//    edges to literal and class vertices that a sharded deployment
//    replicates everywhere, over-reporting the cut actually paid at query
//    time; the kind-masked overload restricted to relation edges is the
//    honest number.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "baseline/partition.h"
#include "rdf/data_graph.h"
#include "test_util.h"

namespace grasp::baseline {
namespace {

using grasp::testing::Dataset;
using grasp::testing::MakeDataset;
using grasp::testing::MakeRandomDataset;

/// Asserts every structural invariant the sharding layer assumes.
void CheckInvariants(const Partition& p, const rdf::DataGraph& graph,
                     std::size_t requested) {
  ASSERT_EQ(p.block_of.size(), graph.NumVertices());
  ASSERT_GE(p.num_blocks, 1u);
  EXPECT_LE(p.num_blocks, requested);
  if (graph.NumVertices() > 0) {
    EXPECT_LE(p.num_blocks, graph.NumVertices());
  }
  std::vector<std::size_t> size(p.num_blocks, 0);
  for (BlockId b : p.block_of) {
    ASSERT_LT(b, p.num_blocks);
    ++size[b];
  }
  for (std::size_t b = 0; b < p.num_blocks; ++b) {
    EXPECT_GT(size[b], 0u) << "block " << b << " is empty";
  }
}

TEST(PartitionTest, InvariantsOnRandomGraphs) {
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    const Dataset d = MakeRandomDataset(seed, /*num_classes=*/4,
                                        /*num_entities=*/60,
                                        /*num_relations=*/120,
                                        /*num_predicates=*/5,
                                        /*num_attributes=*/40,
                                        /*value_pool=*/10);
    const rdf::DataGraph graph = rdf::DataGraph::Build(d.store, d.dictionary);
    for (std::size_t blocks : {1u, 2u, 5u, 16u}) {
      for (PartitionMethod method :
           {PartitionMethod::kBfs, PartitionMethod::kGreedy}) {
        SCOPED_TRACE(::testing::Message()
                     << "seed=" << seed << " blocks=" << blocks << " method="
                     << (method == PartitionMethod::kBfs ? "bfs" : "greedy"));
        CheckInvariants(PartitionGraph(graph, blocks, method), graph, blocks);
      }
    }
  }
}

TEST(PartitionTest, Deterministic) {
  // Two independently parsed copies of the same dataset must partition
  // identically — block ids included, not just cut sizes.
  for (PartitionMethod method :
       {PartitionMethod::kBfs, PartitionMethod::kGreedy}) {
    const Dataset d1 = MakeRandomDataset(42, 3, 50, 100, 4, 30, 8);
    const Dataset d2 = MakeRandomDataset(42, 3, 50, 100, 4, 30, 8);
    const rdf::DataGraph g1 = rdf::DataGraph::Build(d1.store, d1.dictionary);
    const rdf::DataGraph g2 = rdf::DataGraph::Build(d2.store, d2.dictionary);
    const Partition p1 = PartitionGraph(g1, 6, method);
    const Partition p2 = PartitionGraph(g2, 6, method);
    EXPECT_EQ(p1.num_blocks, p2.num_blocks);
    EXPECT_EQ(p1.block_of, p2.block_of);
  }
}

TEST(PartitionTest, DisconnectedGraph) {
  // Three disjoint relation clusters plus isolated typed entities. The BFS
  // seeding must hop components without stranding anything, and the
  // frontier flush at a block boundary must not skip vertices the linear
  // scan already passed.
  std::vector<std::string> lines;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 5; ++i) {
      lines.push_back(grasp::StrFormat("c%de%d a Cluster%d", c, i, c));
      if (i > 0) {
        lines.push_back(grasp::StrFormat("c%de0 linksTo c%de%d", c, c, i));
      }
    }
  }
  lines.push_back("lonely1 a Loner");
  lines.push_back("lonely2 a Loner");
  const Dataset d = MakeDataset(lines);
  const rdf::DataGraph graph = rdf::DataGraph::Build(d.store, d.dictionary);
  for (std::size_t blocks : {2u, 3u, 7u}) {
    for (PartitionMethod method :
         {PartitionMethod::kBfs, PartitionMethod::kGreedy}) {
      SCOPED_TRACE(::testing::Message() << "blocks=" << blocks);
      CheckInvariants(PartitionGraph(graph, blocks, method), graph, blocks);
    }
  }
}

TEST(PartitionTest, MoreBlocksThanVertices) {
  const Dataset d = MakeDataset({
      "e1 a T",
      "e2 a T",
      "e1 rel e2",
  });
  const rdf::DataGraph graph = rdf::DataGraph::Build(d.store, d.dictionary);
  for (PartitionMethod method :
       {PartitionMethod::kBfs, PartitionMethod::kGreedy}) {
    const Partition p =
        PartitionGraph(graph, graph.NumVertices() + 10, method);
    CheckInvariants(p, graph, graph.NumVertices() + 10);
    // With more blocks than vertices every block is a singleton.
    EXPECT_EQ(p.num_blocks, graph.NumVertices());
  }
}

TEST(PartitionTest, GreedyCutNeverWorseThanBfs) {
  // Every refinement move strictly reduces the cut (it requires more links
  // to the destination than to the home block), so the refined partition's
  // cut is bounded by the seed's on any graph.
  for (std::uint64_t seed : {3u, 11u, 19u, 31u}) {
    const Dataset d = MakeRandomDataset(seed, 4, 80, 200, 6, 50, 12);
    const rdf::DataGraph graph = rdf::DataGraph::Build(d.store, d.dictionary);
    for (std::size_t blocks : {2u, 4u, 8u}) {
      const Partition bfs =
          PartitionGraph(graph, blocks, PartitionMethod::kBfs);
      const Partition greedy =
          PartitionGraph(graph, blocks, PartitionMethod::kGreedy);
      EXPECT_LE(greedy.CutSize(graph), bfs.CutSize(graph))
          << "seed=" << seed << " blocks=" << blocks;
    }
  }
}

TEST(PartitionTest, KindAwareCutSizeExcludesNonRelationEdges) {
  // One relation edge, several attribute/type edges. With every vertex in
  // its own block all edges cross, so the all-kinds count equals the edge
  // count — over-reporting the shard-relevant cut, which is exactly the
  // relation-edge count.
  const Dataset d = MakeDataset({
      "e1 a T",
      "e2 a T",
      "e1 rel e2",
      R"(e1 name "alpha")",
      R"(e2 name "beta")",
      R"(e2 note "gamma")",
  });
  const rdf::DataGraph graph = rdf::DataGraph::Build(d.store, d.dictionary);
  Partition scattered;
  scattered.num_blocks = graph.NumVertices();
  scattered.block_of.resize(graph.NumVertices());
  for (std::size_t v = 0; v < graph.NumVertices(); ++v) {
    scattered.block_of[v] = static_cast<BlockId>(v);
  }
  std::size_t relation_edges = 0;
  for (const rdf::Edge& e : graph.edges()) {
    if (e.kind == rdf::EdgeKind::kRelation) ++relation_edges;
  }
  ASSERT_GT(graph.NumEdges(), relation_edges);  // literals/types present
  EXPECT_EQ(scattered.CutSize(graph), graph.NumEdges());
  EXPECT_EQ(scattered.CutSize(graph,
                              rdf::EdgeKindBit(rdf::EdgeKind::kRelation)),
            relation_edges);
  EXPECT_LT(scattered.CutSize(graph,
                              rdf::EdgeKindBit(rdf::EdgeKind::kRelation)),
            scattered.CutSize(graph));
}

TEST(PartitionTest, KindAwareCutMatchesAllKindsOnPartitionerOutput) {
  // Sanity on real partitioner output: the relation-only cut is a subset
  // of the all-kinds cut, for both methods.
  const Dataset d = MakeRandomDataset(5, 3, 40, 80, 4, 60, 6);
  const rdf::DataGraph graph = rdf::DataGraph::Build(d.store, d.dictionary);
  for (PartitionMethod method :
       {PartitionMethod::kBfs, PartitionMethod::kGreedy}) {
    const Partition p = PartitionGraph(graph, 4, method);
    EXPECT_LE(p.CutSize(graph, rdf::EdgeKindBit(rdf::EdgeKind::kRelation)),
              p.CutSize(graph));
  }
}

}  // namespace
}  // namespace grasp::baseline
