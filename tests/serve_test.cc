// Serving-layer tests: QueryControl semantics, deadline→budget calibration,
// and the QueryServer's admission control — bounded queues that shed with
// kOverloaded + retry-after instead of collapsing, two priority lanes,
// queue-deadline expiry, cancellation, and clean shutdown. Lanes with zero
// workers never drain, which makes the shedding paths fully deterministic.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "serve/admission.h"
#include "serve/query_control.h"
#include "test_util.h"

namespace grasp::serve {
namespace {

using grasp::core::KeywordSearchEngine;

TEST(QueryControlTest, DefaultsToUncontrolled) {
  QueryControl control;
  EXPECT_FALSE(control.cancel_requested());
  EXPECT_FALSE(control.has_deadline());
  EXPECT_FALSE(control.Expired());
  EXPECT_EQ(control.remaining_millis(),
            std::numeric_limits<double>::infinity());
}

TEST(QueryControlTest, CancelIsStickyAndIdempotent) {
  QueryControl control;
  control.RequestCancel();
  control.RequestCancel();
  EXPECT_TRUE(control.cancel_requested());
}

TEST(QueryControlTest, DeadlineExpiryAndClear) {
  QueryControl control;
  control.SetDeadline(QueryControl::Clock::now() - std::chrono::seconds(1));
  EXPECT_TRUE(control.has_deadline());
  EXPECT_TRUE(control.Expired());
  EXPECT_LT(control.remaining_millis(), 0.0);

  control.SetDeadline(QueryControl::Clock::now() + std::chrono::hours(1));
  EXPECT_FALSE(control.Expired());
  EXPECT_GT(control.remaining_millis(), 0.0);

  control.ClearDeadline();
  EXPECT_FALSE(control.has_deadline());
  EXPECT_FALSE(control.Expired());
}

TEST(DeadlineCalibratorTest, ConvertsDeadlinesToBudgets) {
  DeadlineCalibrator calibrator(0.2, 100.0);
  EXPECT_DOUBLE_EQ(calibrator.pops_per_ms(), 100.0);
  // 10 ms at 100 pops/ms with 0.5 safety -> 500 pops.
  EXPECT_EQ(calibrator.BudgetForDeadline(10.0, 0.5), 500u);
  // Budgets never collapse to zero: an almost-expired deadline still buys
  // one pop batch, so a cheap answer can come back non-empty.
  EXPECT_GE(calibrator.BudgetForDeadline(1e-9, 0.5), 1u);
  EXPECT_GE(calibrator.BudgetForDeadline(-5.0, 0.5), 1u);
}

TEST(DeadlineCalibratorTest, EwmaTracksObservations) {
  DeadlineCalibrator calibrator(0.5, 100.0);
  calibrator.Observe(2000, 10.0);  // 200 pops/ms
  EXPECT_DOUBLE_EQ(calibrator.pops_per_ms(), 150.0);  // 0.5*200 + 0.5*100
  calibrator.Observe(2000, 10.0);
  EXPECT_DOUBLE_EQ(calibrator.pops_per_ms(), 175.0);
  // Sub-noise timings are ignored rather than polluting the estimate.
  calibrator.Observe(1, 0.0);
  EXPECT_DOUBLE_EQ(calibrator.pops_per_ms(), 175.0);
}

class QueryServerTest : public ::testing::Test {
 protected:
  QueryServerTest()
      : dataset_(grasp::testing::MakeFigure1Dataset()),
        engine_(dataset_.store, dataset_.dictionary) {}

  QueryServer::Request MakeRequest(std::vector<std::string> keywords) {
    QueryServer::Request request;
    request.query.keywords = std::move(keywords);
    return request;
  }

  grasp::testing::Dataset dataset_;
  KeywordSearchEngine engine_;
};

TEST_F(QueryServerTest, ServesQueriesEndToEnd) {
  QueryServer server(engine_, QueryServer::Options{});
  QueryServer::Response response =
      server.ServeSync(MakeRequest({"publication", "aifb"}));
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_FALSE(response.degraded);
  EXPECT_FALSE(response.result.queries.empty());

  const QueryServer::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST_F(QueryServerTest, ShedsDeterministicallyWhenTheQueueIsFull) {
  QueryServer::Options options;
  options.fast_workers = 0;  // lanes never drain: the queue state is exact
  options.deep_workers = 0;
  options.queue_capacity = 2;
  QueryServer server(engine_, options);

  auto f1 = server.Submit(MakeRequest({"publication"}));
  auto f2 = server.Submit(MakeRequest({"publication"}));
  auto f3 = server.Submit(MakeRequest({"publication"}));  // over capacity

  // The shed future resolves immediately, with a retry hint — load is
  // refused explicitly, not buffered without bound or timed out opaquely.
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const QueryServer::Response shed = f3.get();
  EXPECT_EQ(shed.status.code(), StatusCode::kOverloaded);
  EXPECT_GT(shed.retry_after_millis, 0.0);

  const QueryServer::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed, 1u);

  // Shutdown fails the still-queued work explicitly.
  server.Shutdown();
  EXPECT_EQ(f1.get().status.code(), StatusCode::kCancelled);
  EXPECT_EQ(f2.get().status.code(), StatusCode::kCancelled);
  EXPECT_EQ(server.stats().cancelled, 2u);
}

TEST_F(QueryServerTest, FastLaneBypassesACloggedDeepLane) {
  QueryServer::Options options;
  options.deep_workers = 0;  // deep lane clogged by construction
  options.fast_workers = 1;
  options.queue_capacity = 4;
  QueryServer server(engine_, options);

  // Scoped queries are the cheap class: they route to the fast lane and
  // complete even though the deep lane serves nothing.
  QueryServer::Request scoped = MakeRequest({"publication", "aifb"});
  scoped.query.predicate_scope = {"name", "author", "worksAt"};
  QueryServer::Response response = server.ServeSync(std::move(scoped));
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();

  // An unscoped query lands in the deep queue and would wait forever; it
  // must still be admitted (capacity permitting), proving the lanes are
  // separate queues.
  auto deep = server.Submit(MakeRequest({"publication"}));
  EXPECT_EQ(deep.wait_for(std::chrono::milliseconds(0)),
            std::future_status::timeout);
  server.Shutdown();
  EXPECT_EQ(deep.get().status.code(), StatusCode::kCancelled);
}

TEST_F(QueryServerTest, CancelledWhileQueuedFailsFastWithoutRunning) {
  QueryServer server(engine_, QueryServer::Options{});
  QueryServer::Request request = MakeRequest({"publication", "aifb"});
  request.control = std::make_shared<QueryControl>();
  request.control->RequestCancel();  // cancelled before the worker gets it

  const QueryServer::Response response = server.ServeSync(std::move(request));
  EXPECT_EQ(response.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(response.result.queries.empty());
  EXPECT_EQ(server.stats().cancelled, 1u);
  EXPECT_EQ(server.stats().completed, 0u);
}

TEST_F(QueryServerTest, QueueExpiredDeadlineNeverTouchesTheEngine) {
  QueryServer server(engine_, QueryServer::Options{});
  QueryServer::Request request = MakeRequest({"publication", "aifb"});
  // A deadline far below any possible queue latency: by the time a worker
  // picks the request up it has expired, and the worker's time goes to
  // requests that can still make theirs.
  request.deadline_millis = 1e-6;
  const QueryServer::Response response = server.ServeSync(std::move(request));
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.result.queries.empty());
  EXPECT_EQ(server.stats().expired_in_queue, 1u);
  EXPECT_EQ(server.stats().completed, 0u);
}

TEST_F(QueryServerTest, TightCalibrationDegradesGracefullyNotEmptyHanded) {
  QueryServer::Options options;
  // Absurdly pessimistic seed rate: the calibrated budget collapses to a
  // single pop batch, forcing the degraded path deterministically while the
  // generous wall-clock deadline never actually fires.
  options.initial_pops_per_ms = 1e-6;
  options.budget_safety = 1.0;
  QueryServer server(engine_, options);

  QueryServer::Request request = MakeRequest({"publication", "aifb"});
  request.deadline_millis = 60000.0;
  const QueryServer::Response response = server.ServeSync(std::move(request));
  // Degraded-but-OK: the verified prefix is a successful answer.
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.degraded);
  EXPECT_TRUE(response.result.exploration_stats.stopped_early());

  const QueryServer::Stats stats = server.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.degraded, 1u);
}

TEST_F(QueryServerTest, CalibratorLearnsFromServedQueries) {
  QueryServer server(engine_, QueryServer::Options{});
  const double before = server.calibrator().pops_per_ms();
  for (int i = 0; i < 8; ++i) {
    server.ServeSync(MakeRequest({"publication", "aifb"}));
  }
  // Eight observations of a real workload must move the estimate off its
  // seed (in either direction — machines differ; motion is the point).
  EXPECT_NE(server.calibrator().pops_per_ms(), before);
}

TEST_F(QueryServerTest, ShutdownIsIdempotentAndSubmitAfterItSheds) {
  QueryServer server(engine_, QueryServer::Options{});
  server.Shutdown();
  server.Shutdown();
  const QueryServer::Response response =
      server.ServeSync(MakeRequest({"publication"}));
  EXPECT_EQ(response.status.code(), StatusCode::kOverloaded);
  // A shutdown shed is not a backlog shed: there is no queue that will
  // drain, so no retry hint — the HTTP tier turns this into a 503 rather
  // than a 429 + Retry-After that would tell clients to hammer a corpse.
  EXPECT_EQ(response.retry_after_millis, 0.0);
}

TEST_F(QueryServerTest, BacklogShedCarriesARetryHintButShutdownShedDoesNot) {
  QueryServer::Options options;
  options.fast_workers = 0;
  options.deep_workers = 0;
  options.queue_capacity = 1;
  QueryServer server(engine_, options);

  auto parked = server.Submit(MakeRequest({"publication"}));
  auto over = server.Submit(MakeRequest({"publication"}));
  const QueryServer::Response backlog = over.get();
  EXPECT_EQ(backlog.status.code(), StatusCode::kOverloaded);
  EXPECT_GT(backlog.retry_after_millis, 0.0);  // queue drains: retry helps

  server.Shutdown();
  EXPECT_EQ(parked.get().status.code(), StatusCode::kCancelled);
  const QueryServer::Response after = server.ServeSync(MakeRequest({"aifb"}));
  EXPECT_EQ(after.status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(after.retry_after_millis, 0.0);  // shutting down: retry is futile

  const QueryServer::Stats stats = server.stats();
  EXPECT_EQ(stats.shed, 2u);
}

TEST_F(QueryServerTest, ConcurrentSubmittersStayRaceClean) {
  QueryServer::Options options;
  options.deep_workers = 2;
  options.queue_capacity = 8;
  QueryServer server(engine_, options);

  // A burst from several submitting threads: some complete, some shed;
  // every future resolves and the counters reconcile. (The interesting
  // part runs under TSan in CI.)
  std::vector<std::thread> submitters;
  std::vector<std::future<QueryServer::Response>> futures(16);
  std::mutex mutex;
  for (std::size_t t = 0; t < 4; ++t) {
    submitters.emplace_back([this, t, &server, &futures, &mutex] {
      for (std::size_t i = 0; i < 4; ++i) {
        auto f = server.Submit(MakeRequest({"publication", "aifb"}));
        std::lock_guard<std::mutex> lock(mutex);
        futures[t * 4 + i] = std::move(f);
      }
    });
  }
  for (auto& t : submitters) t.join();

  std::size_t ok = 0, shed = 0;
  for (auto& f : futures) {
    const QueryServer::Response r = f.get();
    if (r.status.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(r.status.code(), StatusCode::kOverloaded);
      ++shed;
    }
  }
  const QueryServer::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, 16u);
  EXPECT_EQ(ok, stats.completed);
  EXPECT_EQ(shed, stats.shed);
}

TEST_F(QueryServerTest, ShutdownRacingSubmitResolvesEveryFuture) {
  // The hard invariant of the admission layer, and the one the HTTP
  // front-end's drain leans on: no matter how Submit races Shutdown, every
  // submitted request resolves with a definite status — admitted-and-served
  // (kOk), shed (kOverloaded), failed at shutdown (kCancelled), or expired
  // (kDeadlineExceeded). A dropped callback would hang a client forever.
  // (The interesting interleavings run under TSan in CI.)
  for (int round = 0; round < 8; ++round) {
    QueryServer::Options options;
    options.deep_workers = 1;
    options.queue_capacity = 4;
    QueryServer server(engine_, options);

    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kPerThread = 8;
    std::vector<std::future<QueryServer::Response>> futures(kThreads *
                                                            kPerThread);
    std::mutex mutex;
    std::vector<std::thread> submitters;
    for (std::size_t t = 0; t < kThreads; ++t) {
      submitters.emplace_back([this, t, &server, &futures, &mutex] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          auto f = server.Submit(MakeRequest({"publication", "aifb"}));
          std::lock_guard<std::mutex> lock(mutex);
          futures[t * kPerThread + i] = std::move(f);
        }
      });
    }
    std::thread stopper([&server] { server.Shutdown(); });
    for (auto& t : submitters) t.join();
    stopper.join();

    for (auto& f : futures) {
      const QueryServer::Response r = f.get();  // throws if the promise broke
      const StatusCode code = r.status.code();
      EXPECT_TRUE(code == StatusCode::kOk || code == StatusCode::kOverloaded ||
                  code == StatusCode::kCancelled ||
                  code == StatusCode::kDeadlineExceeded)
          << r.status.ToString();
    }
  }
}

}  // namespace
}  // namespace grasp::serve
