// Equivalence of the copy-free overlay augmentation with the copy-based
// build: AugmentedGraph::Build borrows the summary's CSR core and layers a
// per-query OverlayGraph on top; AugmentedGraph::BuildMaterialized deep-
// copies the base first (the seed's semantics). Both must agree element for
// element — ids, records, adjacency, keyword sets, scores — and drive the
// exploration to identical top-k queries and costs.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/filter_op.h"
#include "common/string_util.h"
#include "core/exploration.h"
#include "core/query_mapping.h"
#include "datagen/lubm_gen.h"
#include "keyword/keyword_index.h"
#include "rdf/data_graph.h"
#include "summary/augmented_graph.h"
#include "summary/summary_graph.h"
#include "test_util.h"

namespace grasp::summary {
namespace {

struct Pipeline {
  rdf::Dictionary dictionary;
  rdf::TripleStore store;
  std::unique_ptr<rdf::DataGraph> graph;
  std::unique_ptr<SummaryGraph> summary;
  std::unique_ptr<keyword::KeywordIndex> index;
};

Pipeline MakeFig1Pipeline() {
  Pipeline p;
  auto dataset = grasp::testing::MakeFigure1Dataset();
  p.dictionary = std::move(dataset.dictionary);
  p.store = std::move(dataset.store);
  p.graph = std::make_unique<rdf::DataGraph>(
      rdf::DataGraph::Build(p.store, p.dictionary));
  p.summary =
      std::make_unique<SummaryGraph>(SummaryGraph::Build(*p.graph));
  p.index = std::make_unique<keyword::KeywordIndex>(
      keyword::KeywordIndex::Build(*p.graph));
  return p;
}

Pipeline MakeLubmPipeline() {
  Pipeline p;
  datagen::LubmOptions options;
  options.num_universities = 1;
  options.departments_per_university = 2;
  datagen::GenerateLubm(options, &p.dictionary, &p.store);
  p.store.Finalize();
  p.graph = std::make_unique<rdf::DataGraph>(
      rdf::DataGraph::Build(p.store, p.dictionary));
  p.summary =
      std::make_unique<SummaryGraph>(SummaryGraph::Build(*p.graph));
  p.index = std::make_unique<keyword::KeywordIndex>(
      keyword::KeywordIndex::Build(*p.graph));
  return p;
}

std::vector<std::vector<keyword::KeywordMatch>> Lookup(
    const Pipeline& p, const std::vector<std::string>& keywords) {
  text::InvertedIndex::SearchOptions options;
  options.max_results = 16;
  std::vector<std::vector<keyword::KeywordMatch>> matches;
  for (const auto& kw : keywords) {
    matches.push_back(p.index->Lookup(kw, options));
  }
  return matches;
}

/// Element-for-element equality of two augmentations.
void ExpectSameGraph(const AugmentedGraph& a, const AugmentedGraph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  ASSERT_EQ(a.base_nodes(), b.base_nodes());
  ASSERT_EQ(a.base_edges(), b.base_edges());
  for (NodeId n = 0; n < a.NumNodes(); ++n) {
    EXPECT_EQ(a.node(n).term, b.node(n).term);
    EXPECT_EQ(a.node(n).kind, b.node(n).kind);
    EXPECT_EQ(a.node(n).agg_count, b.node(n).agg_count);
  }
  for (EdgeId e = 0; e < a.NumEdges(); ++e) {
    EXPECT_EQ(a.edge(e).label, b.edge(e).label);
    EXPECT_EQ(a.edge(e).from, b.edge(e).from);
    EXPECT_EQ(a.edge(e).to, b.edge(e).to);
    EXPECT_EQ(a.edge(e).kind, b.edge(e).kind);
    EXPECT_EQ(a.edge(e).agg_count, b.edge(e).agg_count);
  }
  // Incident iteration must agree edge for edge, in order.
  for (NodeId n = 0; n < a.NumNodes(); ++n) {
    std::vector<EdgeId> ia, ib;
    for (EdgeId e : a.IncidentEdges(n)) ia.push_back(e);
    for (EdgeId e : b.IncidentEdges(n)) ib.push_back(e);
    EXPECT_EQ(ia, ib) << "incidence mismatch at node " << n;
  }
  // Per-keyword element sets K_i with scores.
  ASSERT_EQ(a.num_keywords(), b.num_keywords());
  for (std::size_t kw = 0; kw < a.num_keywords(); ++kw) {
    const auto& ka = a.keyword_elements()[kw];
    const auto& kb = b.keyword_elements()[kw];
    ASSERT_EQ(ka.size(), kb.size()) << "keyword " << kw;
    for (std::size_t i = 0; i < ka.size(); ++i) {
      EXPECT_EQ(ka[i].element.raw(), kb[i].element.raw());
      EXPECT_DOUBLE_EQ(ka[i].score, kb[i].score);
      EXPECT_DOUBLE_EQ(a.MatchScore(ka[i].element),
                       b.MatchScore(kb[i].element));
    }
  }
}

/// The overlay's chained incidence must equal a from-scratch CSR rebuild
/// over the *flattened* element arrays — the adjacency the seed's copy-based
/// builder produced (per node: all touching edges, ascending edge id,
/// self-loops once).
void ExpectSameAsFlatRebuild(const AugmentedGraph& g) {
  std::vector<std::vector<EdgeId>> expected(g.NumNodes());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    expected[g.edge(e).from].push_back(e);
    if (g.edge(e).to != g.edge(e).from) expected[g.edge(e).to].push_back(e);
  }
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    std::vector<EdgeId> actual;
    for (EdgeId e : g.IncidentEdges(n)) actual.push_back(e);
    std::vector<EdgeId> sorted = expected[n];
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(actual, sorted) << "node " << n;
  }
}

void ExpectSameExploration(const Pipeline& p, const AugmentedGraph& a,
                           const AugmentedGraph& b) {
  for (core::CostModel model :
       {core::CostModel::kPathLength, core::CostModel::kPopularity,
        core::CostModel::kMatching}) {
    core::ExplorationOptions options;
    options.k = 10;
    options.cost_model = model;
    core::SubgraphExplorer explorer_a(a, options);
    core::SubgraphExplorer explorer_b(b, options);
    auto results_a = explorer_a.FindTopK();
    auto results_b = explorer_b.FindTopK();
    ASSERT_EQ(results_a.size(), results_b.size());
    core::QueryMappingContext context;
    context.type_term = p.graph->type_term();
    for (std::size_t i = 0; i < results_a.size(); ++i) {
      EXPECT_NEAR(results_a[i].cost, results_b[i].cost, 1e-12);
      EXPECT_EQ(results_a[i].StructureKey(), results_b[i].StructureKey());
      // The mapped conjunctive queries agree as well.
      const auto qa = core::MapToQuery(a, results_a[i], context);
      const auto qb = core::MapToQuery(b, results_b[i], context);
      EXPECT_EQ(qa.CanonicalString(), qb.CanonicalString());
    }
  }
}

void RunEquivalenceOnMatches(
    const Pipeline& p,
    const std::vector<std::vector<keyword::KeywordMatch>>& matches) {
  AugmentedGraph overlay = AugmentedGraph::Build(*p.summary, matches);
  AugmentedGraph materialized =
      AugmentedGraph::BuildMaterialized(*p.summary, matches);
  // The overlay really borrows: base ids line up with the summary.
  EXPECT_EQ(overlay.base_nodes(), p.summary->NumNodes());
  EXPECT_EQ(overlay.base_edges(), p.summary->NumEdges());
  ExpectSameGraph(overlay, materialized);
  ExpectSameAsFlatRebuild(overlay);
  ExpectSameExploration(p, overlay, materialized);
}

void RunEquivalence(const Pipeline& p,
                    const std::vector<std::string>& keywords) {
  SCOPED_TRACE("keywords: " + Join(keywords, ","));
  RunEquivalenceOnMatches(p, Lookup(p, keywords));
}


TEST(OverlayEquivalenceTest, Figure1RunningExample) {
  Pipeline p = MakeFig1Pipeline();
  RunEquivalence(p, {"2006", "cimiano", "aifb"});
}

TEST(OverlayEquivalenceTest, Figure1AttributeAndValueMerge) {
  Pipeline p = MakeFig1Pipeline();
  RunEquivalence(p, {"year", "2006"});
}

TEST(OverlayEquivalenceTest, Figure1SingleClassKeyword) {
  Pipeline p = MakeFig1Pipeline();
  RunEquivalence(p, {"publication"});
}

TEST(OverlayEquivalenceTest, Figure1RelationLabelKeyword) {
  Pipeline p = MakeFig1Pipeline();
  RunEquivalence(p, {"author", "name"});
}

TEST(OverlayEquivalenceTest, Figure1FilterKeyword) {
  Pipeline p = MakeFig1Pipeline();
  // Operator keywords resolve through the filter extension: an artificial
  // overlay node constrained by a FILTER condition.
  const auto filter = ParseFilterKeyword(">2000");
  ASSERT_TRUE(filter.has_value());
  auto match = p.index->LookupFilter(*filter);
  ASSERT_TRUE(match.has_value());
  std::vector<std::vector<keyword::KeywordMatch>> matches;
  matches.push_back({*match});
  matches.push_back(Lookup(p, {"year"})[0]);
  AugmentedGraph overlay = AugmentedGraph::Build(*p.summary, matches);
  AugmentedGraph materialized =
      AugmentedGraph::BuildMaterialized(*p.summary, matches);
  ExpectSameGraph(overlay, materialized);
  ExpectSameAsFlatRebuild(overlay);
  ExpectSameExploration(p, overlay, materialized);
}

// Checked-in fuzzing seed corpus (tests/corpus/): keyword-set shapes that
// randomized runs surfaced, replayed forever against both builders.
TEST(OverlayEquivalenceTest, CorpusReplayFigure1) {
  Pipeline p = MakeFig1Pipeline();
  for (const auto& keywords :
       grasp::testing::LoadKeywordCorpus("fig1_keyword_sets.txt")) {
    SCOPED_TRACE("corpus keywords: " + Join(keywords, ","));
    RunEquivalenceOnMatches(
        p, grasp::testing::CorpusLookup(*p.index, keywords, 16));
  }
}

TEST(OverlayEquivalenceTest, CorpusReplayRandomGraphs) {
  for (std::uint64_t seed : {std::uint64_t{101}, std::uint64_t{202}}) {
    auto dataset = grasp::testing::MakeRandomDataset(
        seed, /*num_classes=*/4, /*num_entities=*/14, /*num_relations=*/18,
        /*num_predicates=*/3, /*num_attributes=*/10, /*value_pool=*/4);
    Pipeline p;
    p.dictionary = std::move(dataset.dictionary);
    p.store = std::move(dataset.store);
    p.graph = std::make_unique<rdf::DataGraph>(
        rdf::DataGraph::Build(p.store, p.dictionary));
    p.summary = std::make_unique<SummaryGraph>(SummaryGraph::Build(*p.graph));
    p.index = std::make_unique<keyword::KeywordIndex>(
        keyword::KeywordIndex::Build(*p.graph));
    for (const auto& keywords :
         grasp::testing::LoadKeywordCorpus("generic_keyword_sets.txt")) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " corpus keywords: " +
                   Join(keywords, ","));
      RunEquivalenceOnMatches(
        p, grasp::testing::CorpusLookup(*p.index, keywords, 16));
    }
  }
}

TEST(OverlayEquivalenceTest, LubmSlice) {
  Pipeline p = MakeLubmPipeline();
  RunEquivalence(p, {"publication", "professor"});
  RunEquivalence(p, {"databases", "student"});
  RunEquivalence(p, {"name", "course", "department"});
}

TEST(OverlayEquivalenceTest, PooledRebuildMatchesFreshBuild) {
  // One overlay shell serving many queries (the engine's pooled path): every
  // Rebuild must be element-for-element identical to a fresh Build — the
  // epoch-bumped incidence extensions must never leak a previous query's
  // edges — and the shell must stop allocating once it has seen the shapes.
  Pipeline p = MakeFig1Pipeline();
  AugmentedGraph pooled = AugmentedGraph::MakeOverlayShell(*p.summary);
  const std::vector<std::vector<std::string>> queries = {
      {"2006", "cimiano", "aifb"},
      {"publication"},                  // shrinking keyword count
      {"year", "2006"},
      {"author", "name"},
      {"2006", "cimiano", "aifb"},      // repeat of the first shape
  };
  for (int round = 0; round < 2; ++round) {
    for (const auto& keywords : queries) {
      SCOPED_TRACE("round " + std::to_string(round) + " keywords: " +
                   Join(keywords, ","));
      const auto matches = Lookup(p, keywords);
      pooled.Rebuild(matches);
      AugmentedGraph fresh = AugmentedGraph::Build(*p.summary, matches);
      ExpectSameGraph(pooled, fresh);
      ExpectSameAsFlatRebuild(pooled);
      ExpectSameExploration(p, pooled, fresh);
    }
  }
}

TEST(OverlayEquivalenceTest, OverlayFootprintIndependentOfBase) {
  // The per-query cost claim, structurally: the same keyword set against a
  // 1-university and a 3-university LUBM summary allocates overlay memory
  // within a constant of each other, while the summaries differ in size.
  auto run = [](std::size_t universities) {
    Pipeline p;
    datagen::LubmOptions options;
    options.num_universities = universities;
    datagen::GenerateLubm(options, &p.dictionary, &p.store);
    p.store.Finalize();
    p.graph = std::make_unique<rdf::DataGraph>(
        rdf::DataGraph::Build(p.store, p.dictionary));
    p.summary =
        std::make_unique<SummaryGraph>(SummaryGraph::Build(*p.graph));
    p.index = std::make_unique<keyword::KeywordIndex>(
        keyword::KeywordIndex::Build(*p.graph));
    const auto matches = Lookup(p, {"publication", "databases"});
    AugmentedGraph g = AugmentedGraph::Build(*p.summary, matches);
    return g.OverlayMemoryUsageBytes();
  };
  const std::size_t small = run(1);
  const std::size_t large = run(3);
  // Identical keyword vocabulary => identical overlay structure; allow
  // slack for map load factors.
  EXPECT_LE(large, small * 2);
  EXPECT_GE(large, small / 2);
}

}  // namespace
}  // namespace grasp::summary
