// Differential suite pinning the sharded scatter-gather engine to the
// single-engine ranking, the PR's central claim: for any shard count the
// merged top-k is byte-identical to the unsharded top-k — same costs, same
// canonical queries, same order — and under budget/deadline pressure it is
// the same *verified prefix* the single engine returns (degraded flagged,
// every entry exact). Covered here:
//
//  - S ∈ {1, 2, 4} over the Fig. 1 dataset and seeded random graphs, for
//    the full keyword-set corpora (filters, fuzzy matches, dead keywords);
//  - pop-budget and pre-expired-deadline stops: sharded and unsharded runs
//    with the same budget agree byte for byte (all shards replay the same
//    pop stream, so they stop at the same pop), and each degraded result
//    is a position-exact prefix of the unbounded ranking;
//  - snapshot-warm shards: a plan-carrying image opened by ShardedEngine
//    (every shard its own mapping) matches the cold in-memory run; opening
//    without a plan or with a mismatched shard count fails loudly;
//  - the madvise failpoint: prefetch advice is advisory, so a failing
//    madvise must not fail the open (PR-4 carry-over);
//  - grasp_shard_* metrics: per-shard labeled families and merge timings
//    are registered and recorded.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "core/engine.h"
#include "core/exploration.h"
#include "serve/query_control.h"
#include "shard/shard_plan.h"
#include "shard/sharded_engine.h"
#include "test_util.h"

namespace grasp::shard {
namespace {

using core::KeywordSearchEngine;
using grasp::testing::Dataset;
using grasp::testing::LoadKeywordCorpus;

using SearchResult = KeywordSearchEngine::SearchResult;

/// Byte-level ranking equality: size, per-position cost, canonical query,
/// and the degradation verdict.
void ExpectSameRanking(const SearchResult& expected, const SearchResult& actual,
                       const std::string& trace) {
  ASSERT_EQ(expected.queries.size(), actual.queries.size()) << trace;
  for (std::size_t i = 0; i < expected.queries.size(); ++i) {
    EXPECT_EQ(expected.queries[i].cost, actual.queries[i].cost)
        << trace << " rank " << i;
    EXPECT_EQ(expected.queries[i].query.CanonicalString(),
              actual.queries[i].query.CanonicalString())
        << trace << " rank " << i;
  }
  EXPECT_EQ(expected.degraded, actual.degraded) << trace;
  EXPECT_EQ(expected.status.code(), actual.status.code()) << trace;
}

/// The degraded contract: every returned entry equals the unbounded
/// ranking's entry at the same position (a verified prefix, never a hole).
void ExpectVerifiedPrefix(const SearchResult& unbounded,
                          const SearchResult& partial,
                          const std::string& trace) {
  ASSERT_LE(partial.queries.size(), unbounded.queries.size()) << trace;
  for (std::size_t i = 0; i < partial.queries.size(); ++i) {
    EXPECT_EQ(unbounded.queries[i].cost, partial.queries[i].cost)
        << trace << " rank " << i;
    EXPECT_EQ(unbounded.queries[i].query.CanonicalString(),
              partial.queries[i].query.CanonicalString())
        << trace << " rank " << i;
  }
}

std::unique_ptr<ShardedEngine> MakeSharded(const Dataset& d,
                                           std::size_t num_shards,
                                           metrics::Registry* registry
                                           = nullptr) {
  ShardedEngine::Options options;
  options.num_shards = num_shards;
  options.metrics = registry;
  return std::make_unique<ShardedEngine>(d.store, d.dictionary, options);
}

TEST(ShardDiffTest, Figure1ByteIdenticalAcrossShardCounts) {
  const Dataset d = grasp::testing::MakeFigure1Dataset();
  const KeywordSearchEngine single(d.store, d.dictionary);
  const auto corpus = LoadKeywordCorpus("fig1_keyword_sets.txt");
  for (std::size_t shards : {1u, 2u, 4u}) {
    const auto sharded = MakeSharded(d, shards);
    EXPECT_EQ(sharded->num_shards(), shards);
    for (const auto& keywords : corpus) {
      for (std::size_t k : {1u, 3u, 5u, 10u}) {
        const std::string trace = grasp::StrFormat(
            "S=%zu k=%zu kw=%s", shards, k, keywords.front().c_str());
        ExpectSameRanking(single.Search(keywords, k),
                          sharded->Search(keywords, k,
                                          sharded->default_exploration()),
                          trace);
      }
    }
  }
}

TEST(ShardDiffTest, RandomGraphsByteIdentical) {
  const auto corpus = LoadKeywordCorpus("generic_keyword_sets.txt");
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Dataset d = grasp::testing::MakeRandomDataset(
        seed, /*num_classes=*/4, /*num_entities=*/40, /*num_relations=*/80,
        /*num_predicates=*/4, /*num_attributes=*/40, /*value_pool=*/8);
    const KeywordSearchEngine single(d.store, d.dictionary);
    for (std::size_t shards : {2u, 4u}) {
      const auto sharded = MakeSharded(d, shards);
      for (const auto& keywords : corpus) {
        const std::string trace = grasp::StrFormat(
            "seed=%llu S=%zu kw=%s", static_cast<unsigned long long>(seed),
            shards, keywords.front().c_str());
        ExpectSameRanking(single.Search(keywords, 5),
                          sharded->Search(keywords, 5,
                                          sharded->default_exploration()),
                          trace);
      }
    }
  }
}

TEST(ShardDiffTest, PopBudgetStopsStayByteIdenticalAndPrefix) {
  // Same pop budget on both sides: every shard replays the unsharded pop
  // stream, so the sharded run stops at the same pop and must return the
  // same (possibly degraded) verified prefix, byte for byte.
  const Dataset d = grasp::testing::MakeFigure1Dataset();
  const KeywordSearchEngine single(d.store, d.dictionary);
  const auto corpus = LoadKeywordCorpus("fig1_keyword_sets.txt");
  const auto sharded = MakeSharded(d, 3);
  for (const auto& keywords : corpus) {
    const SearchResult unbounded = single.Search(keywords, 5);
    for (std::size_t budget : {1u, 2u, 5u, 10u, 25u}) {
      core::ExplorationOptions exploration =
          single.options().exploration;
      exploration.max_cursor_pops = budget;
      const SearchResult want = single.Search(keywords, 5, exploration);
      const SearchResult got = sharded->Search(keywords, 5, exploration);
      const std::string trace = grasp::StrFormat(
          "budget=%zu kw=%s", budget, keywords.front().c_str());
      ExpectSameRanking(want, got, trace);
      ExpectVerifiedPrefix(unbounded, got, trace);
    }
  }
}

TEST(ShardDiffTest, PreExpiredDeadlineByteIdentical) {
  // A control that is already past its deadline stops every explorer at a
  // deterministic pop; the sharded and single runs must agree on the
  // (empty or tiny) verified prefix and on the degraded verdict.
  const Dataset d = grasp::testing::MakeFigure1Dataset();
  const KeywordSearchEngine single(d.store, d.dictionary);
  const auto sharded = MakeSharded(d, 2);
  serve::QueryControl control;
  control.SetDeadlineAfterMillis(-1.0);
  core::ExplorationOptions exploration = single.options().exploration;
  exploration.control = &control;
  const std::vector<std::string> keywords = {"publication", "author"};
  const SearchResult want = single.Search(keywords, 5, exploration);
  const SearchResult got = sharded->Search(keywords, 5, exploration);
  ExpectSameRanking(want, got, "pre-expired deadline");
  ExpectVerifiedPrefix(single.Search(keywords, 5), got,
                       "pre-expired deadline");
}

TEST(ShardDiffTest, SnapshotWarmShardsMatchCold) {
  const Dataset d = grasp::testing::MakeFigure1Dataset();
  const KeywordSearchEngine cold(d.store, d.dictionary);
  const ShardPlan plan =
      ShardPlan::Build(cold.data_graph(), cold.summary_graph(), 2);
  const std::string path = ::testing::TempDir() + "/shard_diff_test.grdf";
  ASSERT_TRUE(cold.SaveIndex(path, plan.Serialize()).ok());

  ShardedEngine::Options options;
  options.num_shards = 0;  // accept the image's count
  auto opened = ShardedEngine::Open(path, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const auto& warm = **opened;
  EXPECT_EQ(warm.num_shards(), 2u);
  for (const auto& keywords : LoadKeywordCorpus("fig1_keyword_sets.txt")) {
    ExpectSameRanking(cold.Search(keywords, 5),
                      warm.Search(keywords, 5, warm.default_exploration()),
                      "warm kw=" + keywords.front());
  }

  // Mismatched shard count: refuse rather than silently repartition.
  options.num_shards = 3;
  EXPECT_FALSE(ShardedEngine::Open(path, options).ok());

  std::remove(path.c_str());
}

TEST(ShardDiffTest, OpenWithoutPlanFails) {
  const Dataset d = grasp::testing::MakeFigure1Dataset();
  const KeywordSearchEngine cold(d.store, d.dictionary);
  const std::string path = ::testing::TempDir() + "/shard_diff_planless.grdf";
  ASSERT_TRUE(cold.SaveIndex(path).ok());
  ShardedEngine::Options options;
  options.num_shards = 2;
  const auto opened = ShardedEngine::Open(path, options);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().ToString().find("shard plan"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ShardDiffTest, MadviseFailpointDoesNotFailOpen) {
  // Prefetch advice is an optimization, never a correctness dependency: an
  // armed snapshot.madvise failpoint must leave the open (and the
  // differential) intact.
  const Dataset d = grasp::testing::MakeFigure1Dataset();
  const KeywordSearchEngine cold(d.store, d.dictionary);
  const ShardPlan plan =
      ShardPlan::Build(cold.data_graph(), cold.summary_graph(), 2);
  const std::string path = ::testing::TempDir() + "/shard_diff_madvise.grdf";
  ASSERT_TRUE(cold.SaveIndex(path, plan.Serialize()).ok());

  failpoint::Arm("snapshot.madvise", failpoint::kAlways);
  ShardedEngine::Options options;
  options.num_shards = 2;
  auto opened = ShardedEngine::Open(path, options);
  EXPECT_GT(failpoint::HitCount("snapshot.madvise"), 0u);
  failpoint::DisarmAll();  // resets hit counters too
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const std::vector<std::string> keywords = {"publication", "author"};
  ExpectSameRanking(cold.Search(keywords, 5),
                    (*opened)->Search(keywords, 5,
                                      (*opened)->default_exploration()),
                    "madvise failpoint");
  std::remove(path.c_str());
}

TEST(ShardDiffTest, PlanRoundTripAndOwnership) {
  const Dataset d = grasp::testing::MakeFigure1Dataset();
  const KeywordSearchEngine engine(d.store, d.dictionary);
  const ShardPlan plan =
      ShardPlan::Build(engine.data_graph(), engine.summary_graph(), 4);
  EXPECT_EQ(plan.num_shards(), 4u);
  const auto serialized = plan.Serialize();
  ASSERT_EQ(serialized.size(), engine.data_graph().NumVertices() + 1);
  const auto round =
      ShardPlan::Deserialize(serialized, engine.data_graph(),
                             engine.summary_graph());
  ASSERT_TRUE(round.ok());
  for (std::size_t v = 0; v < engine.data_graph().NumVertices(); ++v) {
    EXPECT_EQ(plan.OwnerOfVertex(v), round->OwnerOfVertex(v));
    EXPECT_LT(plan.OwnerOfVertex(v), 4u);
  }
  // A single-shard plan owns everything on shard 0.
  const ShardPlan one =
      ShardPlan::Build(engine.data_graph(), engine.summary_graph(), 1);
  for (std::size_t v = 0; v < engine.data_graph().NumVertices(); ++v) {
    EXPECT_EQ(one.OwnerOfVertex(v), 0u);
  }
  // Tampered payloads are rejected.
  auto bad = serialized;
  bad[0] = 0;
  EXPECT_FALSE(ShardPlan::Deserialize(bad, engine.data_graph(),
                                      engine.summary_graph())
                   .ok());
  bad = serialized;
  bad[1] = 4;  // >= num_shards
  EXPECT_FALSE(ShardPlan::Deserialize(bad, engine.data_graph(),
                                      engine.summary_graph())
                   .ok());
  bad = serialized;
  bad.pop_back();
  EXPECT_FALSE(ShardPlan::Deserialize(bad, engine.data_graph(),
                                      engine.summary_graph())
                   .ok());
}

TEST(ShardDiffTest, PerShardMetricsRecorded) {
  const Dataset d = grasp::testing::MakeFigure1Dataset();
  metrics::Registry registry;
  const auto sharded = MakeSharded(d, 2, &registry);
  (void)sharded->Search({"publication", "author"}, 5,
                        sharded->default_exploration());
  const std::string body = registry.RenderPrometheus();
  EXPECT_NE(body.find("grasp_shard_searches_total{shard=\"0\"} 1"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("grasp_shard_searches_total{shard=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(body.find("grasp_shard_search_duration_seconds"),
            std::string::npos);
  EXPECT_NE(body.find("grasp_shard_merge_duration_seconds"),
            std::string::npos);
}

}  // namespace
}  // namespace grasp::shard
