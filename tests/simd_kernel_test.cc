// Conformance suite for the SIMD kernel tiers: every table reachable on the
// build/host (sse42, avx2) must be byte-identical to the generic scalar
// table on every input, including the word- and vector-width boundaries
// where tail handling lives. The scalar table is the semantic reference;
// these tests are what make the per-ISA implementations interchangeable.

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "simd/cpu.h"
#include "simd/kernels.h"
#include "text/levenshtein.h"

namespace grasp::simd {
namespace {

std::vector<Level> ReachableLevels() {
  std::vector<Level> levels = {Level::kScalar};
  if (TableFor(Level::kSse42) != nullptr) levels.push_back(Level::kSse42);
  if (TableFor(Level::kAvx2) != nullptr) levels.push_back(Level::kAvx2);
  return levels;
}

// Word counts straddling the scalar/SSE/AVX2 block widths (2 and 4 words)
// and the ForEachSet chunk width (8 words).
const std::size_t kWordCounts[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 33};

std::vector<std::uint64_t> RandomWords(std::mt19937_64& rng, std::size_t n,
                                       int density_shift) {
  std::vector<std::uint64_t> words(n);
  for (std::uint64_t& w : words) {
    w = rng();
    // density_shift > 0 sparsifies (AND of shifted draws), < 0 densifies.
    for (int i = 0; i < density_shift; ++i) w &= rng();
    for (int i = 0; i < -density_shift; ++i) w |= rng();
  }
  return words;
}

std::vector<std::uint64_t> expect_and(const std::vector<std::uint64_t>& a,
                                      const std::vector<std::uint64_t>& b) {
  std::vector<std::uint64_t> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] & b[i];
  return out;
}

TEST(SimdKernelTest, MaskOpsMatchScalarIncludingAliasedOutput) {
  std::mt19937_64 rng(0x5eed0001);
  const KernelTable* scalar = ScalarTable();
  for (Level level : ReachableLevels()) {
    const KernelTable* table = TableFor(level);
    for (std::size_t n : kWordCounts) {
      for (int density : {-1, 0, 2}) {
        const std::vector<std::uint64_t> a = RandomWords(rng, n, density);
        const std::vector<std::uint64_t> b = RandomWords(rng, n, density);
        std::vector<std::uint64_t> expect(n), got(n);
        scalar->mask_and(a.data(), b.data(), expect.data(), n);
        table->mask_and(a.data(), b.data(), got.data(), n);
        EXPECT_EQ(expect, got) << table->name << " and n=" << n;
        scalar->mask_or(a.data(), b.data(), expect.data(), n);
        table->mask_or(a.data(), b.data(), got.data(), n);
        EXPECT_EQ(expect, got) << table->name << " or n=" << n;
        scalar->mask_andnot(a.data(), b.data(), expect.data(), n);
        table->mask_andnot(a.data(), b.data(), got.data(), n);
        EXPECT_EQ(expect, got) << table->name << " andnot n=" << n;
        // The contract allows out to alias an input.
        std::vector<std::uint64_t> aliased = a;
        table->mask_and(aliased.data(), b.data(), aliased.data(), n);
        EXPECT_EQ(expect_and(a, b), aliased) << table->name << " alias n=" << n;
      }
    }
  }
}

TEST(SimdKernelTest, PopcountWordsMatchesScalar) {
  std::mt19937_64 rng(0x5eed0002);
  const KernelTable* scalar = ScalarTable();
  for (Level level : ReachableLevels()) {
    const KernelTable* table = TableFor(level);
    for (std::size_t n : kWordCounts) {
      for (int density : {-1, 0, 3}) {
        const std::vector<std::uint64_t> w = RandomWords(rng, n, density);
        EXPECT_EQ(scalar->popcount_words(w.data(), n),
                  table->popcount_words(w.data(), n))
            << table->name << " n=" << n;
      }
    }
  }
}

TEST(SimdKernelTest, CollectSetMatchesScalarAcrossDensities) {
  std::mt19937_64 rng(0x5eed0003);
  const KernelTable* scalar = ScalarTable();
  for (Level level : ReachableLevels()) {
    const KernelTable* table = TableFor(level);
    for (std::size_t n : kWordCounts) {
      for (int density : {-1, 0, 4, 64}) {  // 64 => effectively all-zero
        const std::vector<std::uint64_t> w = RandomWords(rng, n, density);
        std::vector<std::uint32_t> expect(n * 64 + 1), got(n * 64 + 1);
        const std::size_t ne = scalar->collect_set(w.data(), n, 1000, expect.data());
        const std::size_t ng = table->collect_set(w.data(), n, 1000, got.data());
        ASSERT_EQ(ne, ng) << table->name << " n=" << n;
        expect.resize(ne);
        got.resize(ng);
        EXPECT_EQ(expect, got) << table->name << " n=" << n;
        EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
      }
    }
  }
}

TEST(SimdKernelTest, CollectSetHitsExactWordBoundaryBits) {
  // Bits at the classic off-by-one positions: 0, 63, 64, 65, 127, 128.
  std::vector<std::uint64_t> w(3, 0);
  for (std::uint32_t bit : {0u, 63u, 64u, 65u, 127u, 128u}) {
    w[bit >> 6] |= std::uint64_t{1} << (bit & 63);
  }
  for (Level level : ReachableLevels()) {
    const KernelTable* table = TableFor(level);
    std::vector<std::uint32_t> out(3 * 64);
    const std::size_t n = table->collect_set(w.data(), w.size(), 10, out.data());
    out.resize(n);
    EXPECT_EQ(out, (std::vector<std::uint32_t>{10, 73, 74, 75, 137, 138}))
        << table->name;
  }
}

TEST(SimdKernelTest, PostingsBestUpdateMatchesScalar) {
  std::mt19937_64 rng(0x5eed0004);
  const KernelTable* scalar = ScalarTable();
  const std::size_t kNumDocs = 300;
  for (Level level : ReachableLevels()) {
    const KernelTable* table = TableFor(level);
    for (std::size_t run_len : {0u, 1u, 3u, 4u, 5u, 8u, 9u, 100u}) {
      // Several overlapping runs applied in sequence, so both the
      // first-touch arm and the max arm execute.
      std::vector<double> best_e(kNumDocs, -1.0), best_g(kNumDocs, -1.0);
      std::vector<std::uint32_t> touched_e, touched_g;
      for (int round = 0; round < 3; ++round) {
        std::vector<std::uint32_t> pairs;  // interleaved (doc, tf)
        std::uint32_t doc = static_cast<std::uint32_t>(rng() % 3);
        for (std::size_t i = 0; i < run_len && doc < kNumDocs; ++i) {
          pairs.push_back(doc);
          pairs.push_back(static_cast<std::uint32_t>(1 + rng() % 4));
          doc += 1 + static_cast<std::uint32_t>(rng() % 5);
        }
        const std::size_t n = pairs.size() / 2;
        const double weight = 0.25 * (round + 1);
        touched_e.resize(touched_e.size() + n);
        touched_g.resize(touched_g.size() + n);
        const std::size_t base_e = touched_e.size() - n;
        const std::size_t base_g = touched_g.size() - n;
        const std::size_t ae = scalar->postings_best_update(
            pairs.data(), n, weight, best_e.data(), touched_e.data() + base_e);
        const std::size_t ag = table->postings_best_update(
            pairs.data(), n, weight, best_g.data(), touched_g.data() + base_g);
        touched_e.resize(base_e + ae);
        touched_g.resize(base_g + ag);
      }
      EXPECT_EQ(touched_e, touched_g) << table->name << " run=" << run_len;
      EXPECT_EQ(best_e, best_g) << table->name << " run=" << run_len;
    }
  }
}

struct FuzzyFixture {
  std::vector<std::string> terms;
  std::vector<unsigned char> first, last;
  std::vector<std::uint32_t> sigs;
};

std::uint32_t Signature(const std::string& s) {
  std::uint32_t sig = 0;
  for (char c : s) sig |= 1u << (static_cast<unsigned char>(c) & 31);
  return sig;
}

FuzzyFixture MakeFuzzyFixture(std::mt19937_64& rng, std::size_t n) {
  FuzzyFixture f;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len = 2 + rng() % 10;
    std::string term;
    for (std::size_t j = 0; j < len; ++j) {
      term.push_back(static_cast<char>('a' + rng() % 26));
    }
    f.first.push_back(static_cast<unsigned char>(term.front()));
    f.last.push_back(static_cast<unsigned char>(term.back()));
    f.sigs.push_back(Signature(term));
    f.terms.push_back(std::move(term));
  }
  return f;
}

TEST(SimdKernelTest, FuzzyPrefilterMatchesScalar) {
  std::mt19937_64 rng(0x5eed0005);
  const KernelTable* scalar = ScalarTable();
  for (Level level : ReachableLevels()) {
    const KernelTable* table = TableFor(level);
    for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 17u, 200u}) {
      const FuzzyFixture f = MakeFuzzyFixture(rng, n);
      for (std::uint32_t max_dist : {1u, 2u, 3u}) {
        const std::string query = n > 0 ? f.terms[rng() % n] : "query";
        std::vector<std::uint32_t> expect(n + 1), got(n + 1);
        const std::size_t ne = scalar->fuzzy_prefilter(
            f.first.data(), f.last.data(), f.sigs.data(), n,
            static_cast<unsigned char>(query.front()),
            static_cast<unsigned char>(query.back()), Signature(query),
            max_dist, expect.data());
        const std::size_t ng = table->fuzzy_prefilter(
            f.first.data(), f.last.data(), f.sigs.data(), n,
            static_cast<unsigned char>(query.front()),
            static_cast<unsigned char>(query.back()), Signature(query),
            max_dist, got.data());
        ASSERT_EQ(ne, ng) << table->name << " n=" << n << " d=" << max_dist;
        expect.resize(ne);
        got.resize(ng);
        EXPECT_EQ(expect, got) << table->name << " n=" << n;
      }
    }
  }
}

TEST(SimdKernelTest, FuzzyPrefilterNeverRejectsTrueMatch) {
  // The prefilter's bounds must be conservative: any term within true edit
  // distance max_dist of the query must survive, on every tier.
  std::mt19937_64 rng(0x5eed0006);
  const FuzzyFixture f = MakeFuzzyFixture(rng, 500);
  for (Level level : ReachableLevels()) {
    const KernelTable* table = TableFor(level);
    for (int q = 0; q < 40; ++q) {
      const std::string query = f.terms[rng() % f.terms.size()];
      for (std::uint32_t max_dist : {1u, 2u}) {
        std::vector<std::uint32_t> kept(f.terms.size());
        const std::size_t n = table->fuzzy_prefilter(
            f.first.data(), f.last.data(), f.sigs.data(), f.terms.size(),
            static_cast<unsigned char>(query.front()),
            static_cast<unsigned char>(query.back()), Signature(query),
            max_dist, kept.data());
        kept.resize(n);
        for (std::size_t i = 0; i < f.terms.size(); ++i) {
          const std::size_t dist =
              text::BoundedLevenshtein(query, f.terms[i], max_dist);
          if (dist <= max_dist) {
            EXPECT_TRUE(std::binary_search(kept.begin(), kept.end(),
                                           static_cast<std::uint32_t>(i)))
                << table->name << " dropped true match \"" << f.terms[i]
                << "\" for query \"" << query << "\" at dist " << dist;
          }
        }
      }
    }
  }
}

TEST(SimdKernelTest, StructHashMatchesScalar) {
  std::mt19937_64 rng(0x5eed0007);
  const KernelTable* scalar = ScalarTable();
  for (Level level : ReachableLevels()) {
    const KernelTable* table = TableFor(level);
    for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 100u}) {
      for (std::size_t m : {0u, 1u, 3u, 4u, 6u, 8u, 33u}) {
        std::vector<std::uint32_t> nodes(n), edges(m);
        for (auto& v : nodes) v = static_cast<std::uint32_t>(rng());
        for (auto& v : edges) v = static_cast<std::uint32_t>(rng());
        EXPECT_EQ(scalar->struct_hash(nodes.data(), n, edges.data(), m),
                  table->struct_hash(nodes.data(), n, edges.data(), m))
            << table->name << " n=" << n << " m=" << m;
      }
    }
  }
}

TEST(SimdKernelTest, StructHashSeparatesStreamsAndCounts) {
  // {n1}|{} vs {}|{e1} with the same id must differ (per-stream salts), and
  // shifting an element across the stream boundary must change the hash.
  const KernelTable* scalar = ScalarTable();
  const std::uint32_t id = 42;
  EXPECT_NE(scalar->struct_hash(&id, 1, nullptr, 0),
            scalar->struct_hash(nullptr, 0, &id, 1));
  const std::uint32_t two[] = {1, 2};
  EXPECT_NE(scalar->struct_hash(two, 2, nullptr, 0),
            scalar->struct_hash(two, 1, two + 1, 1));
}

TEST(SimdDispatchTest, SetActiveLevelClampsToSupported) {
  const Level original = ActiveLevel();
  const Level best = DetectBestLevel();
  EXPECT_EQ(SetActiveLevel(Level::kScalar), Level::kScalar);
  EXPECT_STREQ(ActiveKernels().name, "scalar");
  const Level installed = SetActiveLevel(Level::kAvx2);
  EXPECT_LE(static_cast<int>(installed), static_cast<int>(best));
  EXPECT_STREQ(ActiveKernels().name, LevelName(installed));
  SetActiveLevel(original);
}

TEST(SimdDispatchTest, ParseLevelHandlesAllSpellings) {
  EXPECT_EQ(ParseLevel("scalar"), Level::kScalar);
  EXPECT_EQ(ParseLevel("sse42"), Level::kSse42);
  EXPECT_EQ(ParseLevel("avx2"), Level::kAvx2);
  EXPECT_EQ(ParseLevel("native"), DetectBestLevel());
  EXPECT_EQ(ParseLevel(""), DetectBestLevel());
  EXPECT_FALSE(ParseLevel("mmx").has_value());
}

}  // namespace
}  // namespace grasp::simd
