// Graceful-degradation tests: a deadline-, budget-, or cancel-stopped
// exploration must return a *verified prefix* of the unbounded ranking —
// every entry exactly what the complete run would have returned in that
// position — with the stop reason reported in ExplorationStats, never a
// silent hole. Flat and reference explorers must agree byte for byte on
// every stopped run (pre-cancelled/pre-expired controls make the stop pop
// deterministic), and the engine/SearchBatch layers must propagate the
// degradation per entry.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/exploration.h"
#include "core/exploration_reference.h"
#include "keyword/keyword_index.h"
#include "rdf/data_graph.h"
#include "serve/query_control.h"
#include "summary/augmented_graph.h"
#include "summary/summary_graph.h"
#include "test_util.h"

namespace grasp::core {
namespace {

using summary::AugmentedGraph;
using summary::SummaryGraph;

struct Pipeline {
  rdf::Dictionary dictionary;
  rdf::TripleStore store;
  std::unique_ptr<rdf::DataGraph> graph;
  std::unique_ptr<SummaryGraph> summary;
  std::unique_ptr<keyword::KeywordIndex> index;
};

Pipeline FromDataset(grasp::testing::Dataset dataset) {
  Pipeline p;
  p.dictionary = std::move(dataset.dictionary);
  p.store = std::move(dataset.store);
  p.graph = std::make_unique<rdf::DataGraph>(
      rdf::DataGraph::Build(p.store, p.dictionary));
  p.summary = std::make_unique<SummaryGraph>(SummaryGraph::Build(*p.graph));
  p.index = std::make_unique<keyword::KeywordIndex>(
      keyword::KeywordIndex::Build(*p.graph));
  return p;
}

AugmentedGraph Augment(const Pipeline& p,
                       const std::vector<std::string>& keywords) {
  text::InvertedIndex::SearchOptions options;
  options.max_results = 8;
  std::vector<std::vector<keyword::KeywordMatch>> matches;
  for (const auto& kw : keywords) {
    matches.push_back(p.index->Lookup(kw, options));
  }
  return AugmentedGraph::Build(*p.summary, matches);
}

/// Asserts `partial` is exactly the leading slice of `full`.
void ExpectExactPrefix(const std::vector<MatchingSubgraph>& partial,
                       const std::vector<MatchingSubgraph>& full,
                       const std::string& context) {
  ASSERT_LE(partial.size(), full.size()) << context;
  for (std::size_t i = 0; i < partial.size(); ++i) {
    EXPECT_EQ(partial[i].cost, full[i].cost) << context << " rank " << i;
    EXPECT_EQ(partial[i].StructureKey(), full[i].StructureKey())
        << context << " rank " << i;
  }
}

/// Runs flat + reference under `options`, asserts byte-identical output and
/// identical stop flags, and returns the flat results.
std::vector<MatchingSubgraph> RunBoth(const AugmentedGraph& augmented,
                                      const ExplorationOptions& options,
                                      ExplorationStats* stats_out,
                                      const std::string& context) {
  SubgraphExplorer flat(augmented, options);
  const auto actual = flat.FindTopK();
  ReferenceExplorer reference(augmented, options);
  const auto expected = reference.FindTopK();

  EXPECT_EQ(flat.stats().cursors_popped, reference.stats().cursors_popped)
      << context;
  EXPECT_EQ(flat.stats().cancelled, reference.stats().cancelled) << context;
  EXPECT_EQ(flat.stats().deadline_expired, reference.stats().deadline_expired)
      << context;
  EXPECT_EQ(flat.stats().budget_exceeded, reference.stats().budget_exceeded)
      << context;
  EXPECT_EQ(actual.size(), expected.size()) << context;
  for (std::size_t i = 0; i < actual.size() && i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].cost, expected[i].cost) << context << " rank " << i;
    EXPECT_EQ(actual[i].StructureKey(), expected[i].StructureKey())
        << context << " rank " << i;
  }
  if (stats_out != nullptr) *stats_out = flat.stats();
  return actual;
}

serve::QueryControl::Clock::time_point LongAgo() {
  return serve::QueryControl::Clock::now() - std::chrono::hours(1);
}

TEST(PartialResultTest, BudgetStopIsExactPrefixOfUnboundedRanking) {
  Pipeline p = FromDataset(grasp::testing::MakeFigure1Dataset());
  const AugmentedGraph augmented = Augment(p, {"publication", "aifb"});

  ExplorationOptions unbounded;
  unbounded.k = 10;
  const auto full = RunBoth(augmented, unbounded, nullptr, "unbounded");
  ASSERT_FALSE(full.empty());

  for (std::size_t budget : {1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u}) {
    ExplorationOptions capped = unbounded;
    capped.max_cursor_pops = budget;
    ExplorationStats stats;
    const std::string context = "budget=" + std::to_string(budget);
    const auto partial = RunBoth(augmented, capped, &stats, context);
    ExpectExactPrefix(partial, full, context);
    if (stats.budget_exceeded) {
      EXPECT_TRUE(stats.stopped_early()) << context;
    } else {
      // The run finished under budget; it must be the complete answer.
      EXPECT_EQ(partial.size(), full.size()) << context;
    }
  }
}

TEST(PartialResultTest, PreExpiredDeadlineStopsAtThePollInterval) {
  Pipeline p = FromDataset(grasp::testing::MakeFigure1Dataset());
  const AugmentedGraph augmented = Augment(p, {"publication", "aifb"});

  ExplorationOptions unbounded;
  unbounded.k = 10;
  const auto full = RunBoth(augmented, unbounded, nullptr, "unbounded");
  SubgraphExplorer probe(augmented, unbounded);
  probe.FindTopK();
  const std::size_t natural_pops = probe.stats().cursors_popped;

  serve::QueryControl control;
  control.SetDeadline(LongAgo());
  for (std::uint32_t interval : {1u, 2u, 4u, 8u, 16u, 64u}) {
    ExplorationOptions timed = unbounded;
    timed.control = &control;
    timed.control_poll_interval = interval;
    ExplorationStats stats;
    const std::string context = "poll_interval=" + std::to_string(interval);
    const auto partial = RunBoth(augmented, timed, &stats, context);
    ExpectExactPrefix(partial, full, context);
    if (natural_pops >= interval) {
      // The first poll lands on pop `interval` exactly: a pre-expired
      // control makes the stop pop a pure function of the poll interval.
      EXPECT_TRUE(stats.deadline_expired) << context;
      EXPECT_TRUE(stats.stopped_early()) << context;
      EXPECT_EQ(stats.cursors_popped, interval) << context;
    } else {
      EXPECT_EQ(partial.size(), full.size()) << context;
    }
  }
}

TEST(PartialResultTest, PreCancelledControlStopsBothExplorersIdentically) {
  Pipeline p = FromDataset(grasp::testing::MakeFigure1Dataset());
  const AugmentedGraph augmented = Augment(p, {"thanh", "cimiano"});

  ExplorationOptions unbounded;
  unbounded.k = 10;
  const auto full = RunBoth(augmented, unbounded, nullptr, "unbounded");

  serve::QueryControl control;
  control.RequestCancel();
  for (std::uint32_t interval : {1u, 4u, 32u}) {
    ExplorationOptions cancelled = unbounded;
    cancelled.control = &control;
    cancelled.control_poll_interval = interval;
    ExplorationStats stats;
    const std::string context = "cancel interval=" + std::to_string(interval);
    const auto partial = RunBoth(augmented, cancelled, &stats, context);
    ExpectExactPrefix(partial, full, context);
    EXPECT_TRUE(stats.cancelled || partial.size() == full.size()) << context;
  }
}

TEST(PartialResultTest, RandomGraphsPrefixPropertyHoldsAcrossOptionSweep) {
  for (std::uint64_t seed : {7u, 21u, 99u}) {
    Pipeline p = FromDataset(
        grasp::testing::MakeRandomDataset(seed, 4, 60, 120, 6, 60, 12));
    const AugmentedGraph augmented = Augment(p, {"value1", "class1"});

    for (const bool tightened : {false, true}) {
      ExplorationOptions unbounded;
      unbounded.k = 5;
      unbounded.tightened_bound = tightened;
      const std::string base = "seed=" + std::to_string(seed) +
                               " tightened=" + std::to_string(tightened);
      const auto full = RunBoth(augmented, unbounded, nullptr, base);

      serve::QueryControl expired;
      expired.SetDeadline(LongAgo());
      for (std::uint32_t interval : {1u, 3u, 9u, 27u, 81u}) {
        ExplorationOptions timed = unbounded;
        timed.control = &expired;
        timed.control_poll_interval = interval;
        const std::string context =
            base + " interval=" + std::to_string(interval);
        const auto partial = RunBoth(augmented, timed, nullptr, context);
        ExpectExactPrefix(partial, full, context);
      }
      for (std::size_t budget : {1u, 4u, 16u, 64u, 256u}) {
        ExplorationOptions capped = unbounded;
        capped.max_cursor_pops = budget;
        const std::string context = base + " budget=" + std::to_string(budget);
        const auto partial = RunBoth(augmented, capped, nullptr, context);
        ExpectExactPrefix(partial, full, context);
      }
    }
  }
}

TEST(PartialResultTest, EngineReportsDegradedPrefixWithOkStatus) {
  grasp::testing::Dataset dataset = grasp::testing::MakeFigure1Dataset();
  KeywordSearchEngine engine(dataset.store, dataset.dictionary);

  const std::vector<std::string> keywords = {"publication", "aifb"};
  const KeywordSearchEngine::SearchResult full = engine.Search(keywords, 10);
  ASSERT_FALSE(full.queries.empty());
  EXPECT_TRUE(full.status.ok());
  EXPECT_FALSE(full.degraded);

  // A pre-expired deadline: the engine must come back degraded-but-OK with
  // an exact prefix of the unbounded query ranking (the exploration prefix
  // is exact, and the mapping/sort pipeline is deterministic on it).
  serve::QueryControl control;
  control.SetDeadline(LongAgo());
  ExplorationOptions exploration = engine.options().exploration;
  exploration.control = &control;
  exploration.control_poll_interval = 16;
  const KeywordSearchEngine::SearchResult partial =
      engine.Search(keywords, 10, exploration);
  EXPECT_TRUE(partial.status.ok());
  EXPECT_TRUE(partial.degraded);
  EXPECT_TRUE(partial.exploration_stats.deadline_expired);
  ASSERT_LE(partial.queries.size(), full.queries.size());
  for (std::size_t i = 0; i < partial.queries.size(); ++i) {
    EXPECT_EQ(partial.queries[i].cost, full.queries[i].cost) << "rank " << i;
    EXPECT_EQ(partial.queries[i].query.CanonicalString(),
              full.queries[i].query.CanonicalString())
        << "rank " << i;
  }

  // Cancellation is not a degraded success — it is reported as such.
  serve::QueryControl cancelled;
  cancelled.RequestCancel();
  ExplorationOptions cancel_opts = engine.options().exploration;
  cancel_opts.control = &cancelled;
  const KeywordSearchEngine::SearchResult stopped =
      engine.Search(keywords, 10, cancel_opts);
  EXPECT_EQ(stopped.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(stopped.degraded);
  EXPECT_TRUE(stopped.exploration_stats.cancelled);
}

TEST(PartialResultTest, SearchBatchPropagatesDegradationPerEntry) {
  grasp::testing::Dataset dataset = grasp::testing::MakeFigure1Dataset();
  KeywordSearchEngine engine(dataset.store, dataset.dictionary);

  serve::QueryControl cancelled;
  cancelled.RequestCancel();

  // Entries 0/2 run uncontrolled, entry 1 is pre-cancelled: statuses must
  // stay per-entry, not leak across the batch.
  std::vector<KeywordSearchEngine::KeywordQuery> workload(3);
  workload[0].keywords = {"publication", "aifb"};
  workload[1].keywords = {"publication", "aifb"};
  workload[1].control = &cancelled;
  workload[2].keywords = {"thanh", "cimiano"};

  const auto results = engine.SearchBatch(workload, 2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_FALSE(results[0].degraded);
  EXPECT_EQ(results[1].status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(results[1].degraded);
  EXPECT_TRUE(results[1].exploration_stats.cancelled);
  EXPECT_TRUE(results[2].status.ok());

  // And the cancelled entry's output is the (possibly empty) verified
  // prefix of its own unbounded run.
  const auto full = engine.Search(workload[1].keywords, 10);
  ASSERT_LE(results[1].queries.size(), full.queries.size());
  for (std::size_t i = 0; i < results[1].queries.size(); ++i) {
    EXPECT_EQ(results[1].queries[i].query.CanonicalString(),
              full.queries[i].query.CanonicalString());
  }
}

TEST(PartialResultTest, CancelMidSearchBatchTerminatesWithoutHanging) {
  grasp::testing::Dataset dataset = grasp::testing::MakeRandomDataset(
      5, 6, 200, 500, 8, 200, 20);
  KeywordSearchEngine engine(dataset.store, dataset.dictionary);

  serve::QueryControl control;
  std::vector<KeywordSearchEngine::KeywordQuery> workload(24);
  for (std::size_t i = 0; i < workload.size(); ++i) {
    workload[i].keywords = {"value" + std::to_string(i % 10),
                            "class" + std::to_string(i % 4)};
    workload[i].control = &control;
    workload[i].k = 5;
  }

  // Cancel from another thread while the batch runs: every entry must
  // terminate (possibly complete, possibly cancelled — timing decides), and
  // every cancelled entry must say so. The real assertion is that this
  // returns at all and stays race-clean under TSan.
  std::thread canceller([&control] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    control.RequestCancel();
  });
  const auto results = engine.SearchBatch(workload, 4);
  canceller.join();

  ASSERT_EQ(results.size(), workload.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].exploration_stats.cancelled) {
      EXPECT_EQ(results[i].status.code(), StatusCode::kCancelled) << i;
      EXPECT_TRUE(results[i].degraded) << i;
    } else {
      EXPECT_TRUE(results[i].status.ok()) << i;
    }
    // Ranked output stays sorted whatever the stop reason.
    for (std::size_t r = 1; r < results[i].queries.size(); ++r) {
      EXPECT_LE(results[i].queries[r - 1].cost, results[i].queries[r].cost);
    }
  }
}

}  // namespace
}  // namespace grasp::core
