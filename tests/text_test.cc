#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "text/inverted_index.h"
#include "text/levenshtein.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/thesaurus.h"
#include "text/tokenizer.h"

namespace grasp::text {
namespace {

// ------------------------------------------------------------ Stopwords --

TEST(StopwordsTest, CommonWordsAreStopwords) {
  for (const char* w : {"the", "a", "of", "and", "is", "to"}) {
    EXPECT_TRUE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, ContentWordsAreNot) {
  for (const char* w : {"publication", "cimiano", "graph", "aifb", "2006"}) {
    EXPECT_FALSE(IsStopword(w)) << w;
  }
}

// ------------------------------------------------------------ Tokenizer --

TEST(TokenizerTest, SplitsOnNonAlnum) {
  EXPECT_EQ(Tokenize("X-Media: a demo", false),
            (std::vector<std::string>{"X", "Media", "a", "demo"}));
}

TEST(TokenizerTest, SplitsCamelCase) {
  EXPECT_EQ(Tokenize("worksAt", true),
            (std::vector<std::string>{"works", "At"}));
  EXPECT_EQ(Tokenize("hasProjectMember", true),
            (std::vector<std::string>{"has", "Project", "Member"}));
}

TEST(TokenizerTest, CamelCaseDisabled) {
  EXPECT_EQ(Tokenize("worksAt", false), (std::vector<std::string>{"worksAt"}));
}

TEST(TokenizerTest, SplitsLetterDigitBoundaries) {
  EXPECT_EQ(Tokenize("lubm50", false), (std::vector<std::string>{"lubm", "50"}));
  EXPECT_EQ(Tokenize("2006paper", false),
            (std::vector<std::string>{"2006", "paper"}));
}

TEST(TokenizerTest, EmptyInput) {
  EXPECT_TRUE(Tokenize("", true).empty());
  EXPECT_TRUE(Tokenize("---", true).empty());
}

TEST(AnalyzeTest, FullPipeline) {
  // lowercase + stopword removal + stemming.
  AnalyzerOptions options;
  EXPECT_EQ(Analyze("The Running of the Dogs", options),
            (std::vector<std::string>{"run", "dog"}));
}

TEST(AnalyzeTest, StemmingOff) {
  AnalyzerOptions options;
  options.stem = false;
  options.emit_compound = false;
  EXPECT_EQ(Analyze("running dogs", options),
            (std::vector<std::string>{"running", "dogs"}));
}

TEST(AnalyzeTest, CompoundTermForMultiTokenLabels) {
  // Short multi-token labels additionally index their concatenation, so a
  // user typing "worksat" as one word still hits the predicate label.
  AnalyzerOptions options;
  options.stem = false;
  EXPECT_EQ(Analyze("running dogs", options),
            (std::vector<std::string>{"running", "dogs", "runningdogs"}));
  // Single-token labels gain no compound.
  EXPECT_EQ(Analyze("running", options),
            (std::vector<std::string>{"running"}));
  // Labels longer than four tokens gain no compound.
  EXPECT_EQ(
      Analyze("one keyword per index entry here ok", options).back(), "ok");
}

TEST(AnalyzeTest, KeepsNumbers) {
  EXPECT_EQ(Analyze("2006", AnalyzerOptions{}),
            (std::vector<std::string>{"2006"}));
}

TEST(AnalyzeTest, CamelCasePredicateLabel) {
  // "at" is a stopword; the compound keeps the one-word spelling reachable.
  EXPECT_EQ(Analyze("worksAt", AnalyzerOptions{}),
            (std::vector<std::string>{"work", "worksat"}));
}

// --------------------------------------------------------------- Porter --

struct StemCase {
  const char* input;
  const char* expected;
};

class PorterStemmerTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemmerTest, MatchesReferenceVector) {
  EXPECT_EQ(PorterStem(GetParam().input), GetParam().expected);
}

// Reference outputs from Porter's published vocabulary (sample).
INSTANTIATE_TEST_SUITE_P(
    ReferenceVectors, PorterStemmerTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"}, StemCase{"predication", "predic"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"}, StemCase{"formaliti", "formal"},
        StemCase{"sensitiviti", "sensit"}, StemCase{"sensibiliti", "sensibl"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("is"), "is");
  EXPECT_EQ(PorterStem(""), "");
}

TEST(PorterStemmerTest, DomainWords) {
  EXPECT_EQ(PorterStem("publications"), PorterStem("publication"));
  EXPECT_EQ(PorterStem("researchers"), PorterStem("researcher"));
  EXPECT_EQ(PorterStem("universities"), PorterStem("university"));
}

// ---------------------------------------------------------- Levenshtein --

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(LevenshteinDistance("cimiano", "cimano"),
            LevenshteinDistance("cimano", "cimiano"));
}

TEST(BoundedLevenshteinTest, ExactWithinLimit) {
  EXPECT_EQ(BoundedLevenshtein("kitten", "sitting", 3), 3u);
}

TEST(BoundedLevenshteinTest, ExceedsLimitReturnsOverLimit) {
  EXPECT_GT(BoundedLevenshtein("completely", "different", 2), 2u);
  EXPECT_GT(BoundedLevenshtein("ab", "abcdef", 2), 2u);  // length gap prune
}

TEST(LevenshteinSimilarityTest, Bounds) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("cimiano", "cimano"), 1.0 - 1.0 / 7.0,
              1e-12);
}

/// Property: bounded variant agrees with a naive full DP implementation.
class LevenshteinPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static std::size_t Naive(const std::string& a, const std::string& b) {
    std::vector<std::vector<std::size_t>> dp(a.size() + 1,
                                             std::vector<std::size_t>(b.size() + 1));
    for (std::size_t i = 0; i <= a.size(); ++i) dp[i][0] = i;
    for (std::size_t j = 0; j <= b.size(); ++j) dp[0][j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      for (std::size_t j = 1; j <= b.size(); ++j) {
        dp[i][j] = std::min({dp[i - 1][j] + 1, dp[i][j - 1] + 1,
                             dp[i - 1][j - 1] + (a[i - 1] != b[j - 1])});
      }
    }
    return dp[a.size()][b.size()];
  }
};

TEST_P(LevenshteinPropertyTest, AgreesWithNaiveDp) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    auto random_word = [&rng]() {
      std::string w;
      const std::size_t len = rng.NextBelow(12);
      for (std::size_t i = 0; i < len; ++i) {
        w.push_back(static_cast<char>('a' + rng.NextBelow(4)));
      }
      return w;
    };
    const std::string a = random_word(), b = random_word();
    const std::size_t expected = Naive(a, b);
    EXPECT_EQ(LevenshteinDistance(a, b), expected) << a << " vs " << b;
    for (std::size_t limit : {0u, 1u, 2u, 5u}) {
      const std::size_t bounded = BoundedLevenshtein(a, b, limit);
      if (expected <= limit) {
        EXPECT_EQ(bounded, expected);
      } else {
        EXPECT_GT(bounded, limit);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevenshteinPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// ------------------------------------------------------------ Thesaurus --

TEST(ThesaurusTest, SynonymsAreSymmetric) {
  Thesaurus t;
  t.AddSynonym("paper", "article");
  auto from_paper = t.Lookup("paper");
  auto from_article = t.Lookup("article");
  ASSERT_EQ(from_paper.size(), 1u);
  ASSERT_EQ(from_article.size(), 1u);
  EXPECT_EQ(from_paper[0].term, PorterStem("article"));
  EXPECT_EQ(from_article[0].term, PorterStem("paper"));
}

TEST(ThesaurusTest, LookupNormalizesQuery) {
  Thesaurus t;
  t.AddSynonym("publication", "paper");
  // Plural/case variants hit the same entry after normalization.
  EXPECT_FALSE(t.Lookup("Publications").empty());
}

TEST(ThesaurusTest, HypernymIsDirectional) {
  Thesaurus t;
  t.AddHypernym("professor", "person");
  auto up = t.Lookup("professor");
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].relation, Thesaurus::Relation::kHypernym);
  auto down = t.Lookup("person");
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].relation, Thesaurus::Relation::kHyponym);
}

TEST(ThesaurusTest, BestWeightWins) {
  Thesaurus t;
  t.AddSynonym("a1", "b1", 0.5);
  t.AddSynonym("a1", "b1", 0.8);
  ASSERT_EQ(t.Lookup("a1").size(), 1u);
  EXPECT_DOUBLE_EQ(t.Lookup("a1")[0].weight, 0.8);
}

TEST(ThesaurusTest, SelfReferenceIgnored) {
  Thesaurus t;
  t.AddSynonym("paper", "papers");  // same stem
  EXPECT_TRUE(t.Lookup("paper").empty());
}

TEST(ThesaurusTest, BuiltInCoversEvaluationDomains) {
  Thesaurus t = Thesaurus::BuiltIn();
  EXPECT_FALSE(t.Lookup("publication").empty());
  EXPECT_FALSE(t.Lookup("professor").empty());
  EXPECT_FALSE(t.Lookup("athlete").empty());
  EXPECT_TRUE(t.Lookup("zzz-unknown").empty());
}

// ------------------------------------------------------- InvertedIndex --

class InvertedIndexTest : public ::testing::Test {
 protected:
  InvertedIndexTest() : index_(AnalyzerOptions{}) {
    publication_ = index_.AddDocument("Publication");
    researcher_ = index_.AddDocument("Researcher");
    works_at_ = index_.AddDocument("worksAt");
    cimiano_ = index_.AddDocument("P. Cimiano");
    year2006_ = index_.AddDocument("2006");
    xmedia_ = index_.AddDocument("X-Media");
    index_.Finalize();
  }

  bool Contains(const std::vector<InvertedIndex::Hit>& hits,
                InvertedIndex::DocId doc) const {
    return std::any_of(hits.begin(), hits.end(),
                       [doc](const auto& h) { return h.doc == doc; });
  }

  InvertedIndex index_;
  InvertedIndex::DocId publication_, researcher_, works_at_, cimiano_,
      year2006_, xmedia_;
};

TEST_F(InvertedIndexTest, ExactMatchScoresOne) {
  auto hits = index_.Search("2006");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc, year2006_);
  EXPECT_GT(hits[0].score, 0.9);
}

TEST_F(InvertedIndexTest, StemmedMatch) {
  auto hits = index_.Search("publications");
  EXPECT_TRUE(Contains(hits, publication_));
}

TEST_F(InvertedIndexTest, FuzzyMatchTypo) {
  auto hits = index_.Search("cimano");  // missing 'i'
  ASSERT_TRUE(Contains(hits, cimiano_));
  for (const auto& h : hits) {
    if (h.doc == cimiano_) {
      EXPECT_LT(h.score, 1.0);
      EXPECT_GT(h.score, 0.5);
    }
  }
}

TEST_F(InvertedIndexTest, FuzzyDisabled) {
  InvertedIndex::SearchOptions options;
  options.fuzzy = false;
  auto hits = index_.Search("cimano", options);
  EXPECT_FALSE(Contains(hits, cimiano_));
}

TEST_F(InvertedIndexTest, ThesaurusExpansion) {
  Thesaurus thesaurus;
  thesaurus.AddSynonym("paper", "publication");
  InvertedIndex::SearchOptions options;
  options.thesaurus = &thesaurus;
  auto hits = index_.Search("paper", options);
  ASSERT_TRUE(Contains(hits, publication_));
  for (const auto& h : hits) {
    if (h.doc == publication_) {
      EXPECT_LT(h.score, 1.0);
    }
  }
}

TEST_F(InvertedIndexTest, MultiTokenPartialMatchPenalized) {
  auto full = index_.Search("p cimiano");
  auto partial = index_.Search("xyzzy cimiano");
  double full_score = 0, partial_score = 0;
  for (const auto& h : full) {
    if (h.doc == cimiano_) full_score = h.score;
  }
  for (const auto& h : partial) {
    if (h.doc == cimiano_) partial_score = h.score;
  }
  EXPECT_GT(full_score, partial_score);
  EXPECT_GT(partial_score, 0.0);
}

TEST_F(InvertedIndexTest, CamelCaseLabelReachableByWord) {
  auto hits = index_.Search("works");
  EXPECT_TRUE(Contains(hits, works_at_));
}

TEST_F(InvertedIndexTest, MaxResultsCaps) {
  InvertedIndex::SearchOptions options;
  options.max_results = 1;
  EXPECT_LE(index_.Search("p", options).size(), 1u);
}

TEST_F(InvertedIndexTest, NoMatchReturnsEmpty) {
  EXPECT_TRUE(index_.Search("qqqqqqqqqq").empty());
}

TEST_F(InvertedIndexTest, EmptyKeywordReturnsEmpty) {
  EXPECT_TRUE(index_.Search("").empty());
  EXPECT_TRUE(index_.Search("   ").empty());
}

TEST_F(InvertedIndexTest, ResultsSortedByScore) {
  auto hits = index_.Search("publication");
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
}

TEST_F(InvertedIndexTest, MemoryUsageNonZero) {
  EXPECT_GT(index_.MemoryUsageBytes(), 0u);
  EXPECT_EQ(index_.num_documents(), 6u);
  EXPECT_GT(index_.vocabulary_size(), 0u);
}

TEST(InvertedIndexEdgeTest, IdfPrefersRareTerm) {
  InvertedIndex index{AnalyzerOptions{}};
  // "alpha" occurs in many documents, "omega" in one.
  for (int i = 0; i < 9; ++i) index.AddDocument("alpha common");
  auto rare = index.AddDocument("omega");
  index.Finalize();
  auto hits_rare = index.Search("omega");
  auto hits_common = index.Search("alpha");
  ASSERT_FALSE(hits_rare.empty());
  ASSERT_FALSE(hits_common.empty());
  EXPECT_EQ(hits_rare[0].doc, rare);
  EXPECT_GT(hits_rare[0].score, hits_common[0].score);
}

TEST(InvertedIndexEdgeTest, ShortTokensNeverFuzzyMatch) {
  InvertedIndex index{AnalyzerOptions{}};
  auto ab = index.AddDocument("ab");
  index.Finalize();
  auto hits = index.Search("ac");  // distance 1 but len/3 == 0
  EXPECT_FALSE(std::any_of(hits.begin(), hits.end(),
                           [&](const auto& h) { return h.doc == ab; }));
}

}  // namespace
}  // namespace grasp::text
