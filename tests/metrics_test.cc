// Unit tests for the metrics layer: histogram bucket math round-trips,
// percentile pinning (the p=0 / p=100 / single-sample edges that bit the
// loadgen), multi-writer concurrency against a snapshotting reader (the
// TSan leg runs this), golden Prometheus exposition, and the unbounded
// /statsz JSON rendering that replaced the truncating snprintf buffer.

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace grasp::metrics {
namespace {

// ------------------------------------------------------- bucket layout --

TEST(HistogramBuckets, EveryBucketRoundTripsItsOwnBounds) {
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    const std::uint64_t lower = Histogram::BucketLowerBound(i);
    const std::uint64_t upper = Histogram::BucketUpperBound(i);
    EXPECT_EQ(Histogram::BucketFor(lower), i) << "lower of bucket " << i;
    EXPECT_EQ(Histogram::BucketFor(upper), i) << "upper of bucket " << i;
    EXPECT_GE(upper, lower);
  }
}

TEST(HistogramBuckets, BucketsAreContiguousAndExhaustive) {
  // No gaps, no overlaps: each bucket starts one past the previous end
  // (the overflow bucket reports upper == lower, so stop before it).
  for (int i = 0; i + 2 < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketLowerBound(i + 1),
              Histogram::BucketUpperBound(i) + 1)
        << "gap after bucket " << i;
  }
  // Values past the last regular bucket all land in the overflow bucket.
  const std::uint64_t overflow_lower =
      Histogram::BucketLowerBound(Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketFor(overflow_lower), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketFor(~std::uint64_t{0}),
            Histogram::kNumBuckets - 1);
}

TEST(HistogramBuckets, RelativeWidthIsAtMost25Percent) {
  // Buckets 0..7 are exact; every regular log bucket spans at most a
  // quarter of its lower bound, which bounds percentile error.
  for (int i = 8; i + 1 < Histogram::kNumBuckets; ++i) {
    const std::uint64_t lower = Histogram::BucketLowerBound(i);
    const std::uint64_t width = Histogram::BucketUpperBound(i) - lower + 1;
    EXPECT_LE(width * 4, lower) << "bucket " << i;
  }
}

TEST(HistogramBuckets, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < 8; ++v) {
    const int i = Histogram::BucketFor(v);
    EXPECT_EQ(Histogram::BucketLowerBound(i), v);
    EXPECT_EQ(Histogram::BucketUpperBound(i), v);
  }
}

// --------------------------------------------------------- percentiles --

TEST(HistogramPercentile, EmptySnapshotReportsZero) {
  Histogram h;
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Percentile(0.0), 0.0);
  EXPECT_EQ(snap.Percentile(50.0), 0.0);
  EXPECT_EQ(snap.Percentile(100.0), 0.0);
}

TEST(HistogramPercentile, SingleSampleReportsItsBucketEdgeForEveryP) {
  Histogram h;
  h.Record(100);  // bucket [96, 111]
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 100u);
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(snap.Percentile(p), 96.0) << "p=" << p;
  }
}

TEST(HistogramPercentile, ExactBucketsReportExactQuantiles) {
  Histogram h;
  for (std::uint64_t v = 0; v < 8; ++v) h.Record(v);
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.Percentile(0.0), 0.0);    // p=0: minimum, never wrapped
  EXPECT_EQ(snap.Percentile(100.0), 7.0);  // p=100: maximum
  EXPECT_EQ(snap.Percentile(50.0), 3.0);   // nearest rank: ceil(4)-th = 3
}

TEST(HistogramPercentile, QuantilesLandWithinOneBucketOfTruth) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 1000u);
  const double p50 = snap.Percentile(50.0);
  const double p99 = snap.Percentile(99.0);
  EXPECT_GE(p50, 500.0 * 0.75);
  EXPECT_LE(p50, 500.0 * 1.25);
  EXPECT_GE(p99, 990.0 * 0.75);
  EXPECT_LE(p99, 990.0 * 1.25);
  // Out-of-range p clamps instead of indexing out of the sample.
  EXPECT_EQ(snap.Percentile(-10.0), snap.Percentile(0.0));
  EXPECT_EQ(snap.Percentile(250.0), snap.Percentile(100.0));
}

TEST(HistogramPercentile, MergeAddsCountsAndSums) {
  Histogram a, b;
  a.Record(10);
  a.Record(20);
  b.Record(1000);
  Histogram::Snapshot merged = a.TakeSnapshot();
  merged.Merge(b.TakeSnapshot());
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.sum, 1030u);
  // 1000 lands in bucket [896, 1023]; a single-sample bucket reports its
  // low edge.
  EXPECT_EQ(merged.Percentile(100.0), 896.0);
}

TEST(PercentileOfSorted, PinsTheEdgeCases) {
  EXPECT_EQ(PercentileOfSorted({}, 50.0), 0.0);

  const std::vector<double> one = {5.0};
  EXPECT_EQ(PercentileOfSorted(one, 0.0), 5.0);
  EXPECT_EQ(PercentileOfSorted(one, 50.0), 5.0);
  EXPECT_EQ(PercentileOfSorted(one, 100.0), 5.0);

  const std::vector<double> four = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(PercentileOfSorted(four, 0.0), 1.0);  // rank clamps to 1, not 0
  EXPECT_EQ(PercentileOfSorted(four, 25.0), 1.0);
  EXPECT_EQ(PercentileOfSorted(four, 50.0), 2.0);
  EXPECT_EQ(PercentileOfSorted(four, 75.0), 3.0);
  EXPECT_EQ(PercentileOfSorted(four, 100.0), 4.0);
  // Out-of-range p clamps instead of wrapping the index.
  EXPECT_EQ(PercentileOfSorted(four, -5.0), 1.0);
  EXPECT_EQ(PercentileOfSorted(four, 500.0), 4.0);
}

// --------------------------------------------------------- concurrency --

TEST(HistogramConcurrency, TotalsAreConservedUnderConcurrentWriters) {
  // Writers hammer one histogram while a reader snapshots continuously.
  // Every snapshot must be internally consistent (count == sum of buckets
  // holds by construction; it must also be monotone), and the final
  // snapshot must conserve every recording. TSan runs this test.
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 50'000;

  Histogram h;
  Counter recorded;
  std::atomic<bool> done{false};

  std::thread reader([&h, &done] {
    std::uint64_t last_count = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const Histogram::Snapshot snap = h.TakeSnapshot();
      std::uint64_t bucket_total = 0;
      for (const std::uint64_t b : snap.buckets) bucket_total += b;
      ASSERT_EQ(snap.count, bucket_total);
      ASSERT_GE(snap.count, last_count) << "count went backwards";
      last_count = snap.count;
      snap.Percentile(99.0);  // must be safe on a moving histogram
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&h, &recorded, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        h.Record((i * 7 + static_cast<std::uint64_t>(w)) % 5'000);
        recorded.Increment();
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  const Histogram::Snapshot final_snap = h.TakeSnapshot();
  EXPECT_EQ(final_snap.count, kWriters * kPerWriter);
  EXPECT_EQ(recorded.value(), kWriters * kPerWriter);
  std::uint64_t expected_sum = 0;
  for (int w = 0; w < kWriters; ++w) {
    for (std::uint64_t i = 0; i < kPerWriter; ++i) {
      expected_sum += (i * 7 + static_cast<std::uint64_t>(w)) % 5'000;
    }
  }
  EXPECT_EQ(final_snap.sum, expected_sum);
}

// ------------------------------------------------------------ registry --

TEST(Registry, GetIsIdempotentAndLabelsSplitInstances) {
  Registry registry;
  Counter* a = registry.GetCounter("grasp_test_total", "help");
  Counter* b = registry.GetCounter("grasp_test_total", "help");
  EXPECT_EQ(a, b);
  Counter* fast =
      registry.GetCounter("grasp_lane_total", "help", {{"lane", "fast"}});
  Counter* deep =
      registry.GetCounter("grasp_lane_total", "help", {{"lane", "deep"}});
  EXPECT_NE(fast, deep);
  EXPECT_EQ(fast,
            registry.GetCounter("grasp_lane_total", "help", {{"lane", "fast"}}));
}

/// Extracts the numeric value of the sample line starting with `prefix`.
double SampleValue(const std::string& exposition, const std::string& prefix) {
  std::size_t pos = 0;
  while ((pos = exposition.find(prefix, pos)) != std::string::npos) {
    if (pos == 0 || exposition[pos - 1] == '\n') {
      const std::size_t sp = exposition.find(' ', pos + prefix.size() - 1);
      if (sp == std::string::npos) break;
      return std::atof(exposition.c_str() + sp + 1);
    }
    pos += prefix.size();
  }
  ADD_FAILURE() << "no sample line starts with: " << prefix;
  return -1.0;
}

TEST(Registry, PrometheusExpositionIsWellFormed) {
  Registry registry;
  registry.GetCounter("grasp_requests_total", "Requests seen")->Increment(3);
  registry.GetGauge("grasp_active", "Active things", {{"kind", "conn"}})
      ->Set(2.5);
  Histogram* h = registry.GetHistogram(
      "grasp_latency_seconds", "Latency", {{"class", "2xx"}}, 1e-6);
  h->Record(100);
  h->Record(100);
  h->Record(5'000'000);  // 5 s in µs

  const std::string text = registry.RenderPrometheus();

  EXPECT_NE(text.find("# HELP grasp_requests_total Requests seen\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE grasp_requests_total counter\n"),
            std::string::npos);
  EXPECT_EQ(SampleValue(text, "grasp_requests_total "), 3.0);

  EXPECT_NE(text.find("# TYPE grasp_active gauge\n"), std::string::npos);
  EXPECT_EQ(SampleValue(text, "grasp_active{kind=\"conn\"} "), 2.5);

  EXPECT_NE(text.find("# TYPE grasp_latency_seconds histogram\n"),
            std::string::npos);
  // _count must equal the +Inf cumulative bucket, always emitted.
  const double count =
      SampleValue(text, "grasp_latency_seconds_count{class=\"2xx\"} ");
  const double inf = SampleValue(
      text, "grasp_latency_seconds_bucket{class=\"2xx\",le=\"+Inf\"} ");
  EXPECT_EQ(count, 3.0);
  EXPECT_EQ(inf, count);
  // _sum is exposed in seconds (scale 1e-6 applied).
  const double sum =
      SampleValue(text, "grasp_latency_seconds_sum{class=\"2xx\"} ");
  EXPECT_NEAR(sum, 5.0002, 1e-9);

  // Cumulative buckets are nondecreasing in exposition order.
  double prev = 0.0;
  std::size_t pos = 0;
  int bucket_lines = 0;
  const std::string bucket_prefix = "grasp_latency_seconds_bucket{";
  while ((pos = text.find(bucket_prefix, pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') {
      const std::size_t sp = text.find(' ', pos);
      ASSERT_NE(sp, std::string::npos);
      const double v = std::atof(text.c_str() + sp + 1);
      EXPECT_GE(v, prev) << "cumulative bucket counts decreased";
      prev = v;
      ++bucket_lines;
    }
    pos += bucket_prefix.size();
  }
  EXPECT_GE(bucket_lines, 3);  // two occupied buckets + +Inf at minimum
}

TEST(Registry, LabelValuesAreEscaped) {
  Registry registry;
  registry
      .GetCounter("grasp_esc_total", "h", {{"path", "a\"b\\c\nd"}})
      ->Increment();
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("grasp_esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos)
      << text;
}

TEST(Registry, CountersStayMonotoneAcrossScrapes) {
  Registry registry;
  Counter* c = registry.GetCounter("grasp_mono_total", "h");
  Histogram* h = registry.GetHistogram("grasp_mono_seconds", "h", {}, 1e-6);
  c->Increment(5);
  h->Record(10);
  const std::string first = registry.RenderPrometheus();
  c->Increment(2);
  h->Record(10);
  const std::string second = registry.RenderPrometheus();
  EXPECT_EQ(SampleValue(first, "grasp_mono_total "), 5.0);
  EXPECT_EQ(SampleValue(second, "grasp_mono_total "), 7.0);
  EXPECT_LT(SampleValue(first, "grasp_mono_seconds_count "),
            SampleValue(second, "grasp_mono_seconds_count "));
}

TEST(Registry, JsonEntriesAreUnboundedAndSurviveSaturatedCounters) {
  // Regression for the /statsz truncation bug: the old renderer used a
  // fixed 1024-byte snprintf buffer, so enough large counters silently
  // chopped the JSON mid-token. The registry renderer must emit every
  // entry at full width no matter how many instruments exist.
  Registry registry;
  constexpr std::uint64_t kHuge = ~std::uint64_t{0} / 2;  // 19 digits
  for (int i = 0; i < 40; ++i) {
    registry
        .GetCounter("grasp_very_long_counter_name_for_truncation_" +
                        std::to_string(i),
                    "h")
        ->Increment(kHuge + static_cast<std::uint64_t>(i));
  }
  registry.GetHistogram("grasp_json_seconds", "h", {}, 1e-6)->Record(123);

  std::string out = "{";
  bool first = true;
  registry.AppendJsonEntries(&out, &first);
  out += "}";

  EXPECT_GT(out.size(), 1024u) << "not past the old truncation point";
  // Every entry survived, full-width.
  for (int i = 0; i < 40; ++i) {
    const std::string key = "\"grasp_very_long_counter_name_for_truncation_" +
                            std::to_string(i) + "\":";
    EXPECT_NE(out.find(key), std::string::npos) << key;
  }
  EXPECT_NE(out.find(std::to_string(kHuge)), std::string::npos);
  // Structurally sound: balanced braces, no dangling quote at the end.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char ch = out[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  // Histogram entries carry the derived quantiles.
  EXPECT_NE(out.find("\"grasp_json_seconds\":{\"count\":1"),
            std::string::npos)
      << out.substr(out.size() - 200);
}

}  // namespace
}  // namespace grasp::metrics
