#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "datagen/dblp_gen.h"
#include "rdf/ntriples.h"
#include "rdf/snapshot.h"
#include "test_util.h"

namespace grasp::rdf {
namespace {

/// Serializes both stores as sorted N-Triples text and compares: equality
/// modulo ids, which snapshots do not promise to preserve verbatim (they do,
/// but the test should not depend on it).
std::string CanonicalText(const TripleStore& store, const Dictionary& dict) {
  std::ostringstream out;
  WriteNTriples(store, dict, &out);
  return out.str();
}

TEST(SnapshotTest, RoundTripFigure1) {
  auto dataset = grasp::testing::MakeFigure1Dataset();
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(dataset.store, dataset.dictionary, &buffer).ok());

  Dictionary loaded_dict;
  TripleStore loaded_store;
  auto status = ReadSnapshot(&buffer, &loaded_dict, &loaded_store);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(loaded_store.finalized());
  EXPECT_EQ(loaded_store.size(), dataset.store.size());
  EXPECT_EQ(loaded_dict.size(), dataset.dictionary.size());
  EXPECT_EQ(CanonicalText(loaded_store, loaded_dict),
            CanonicalText(dataset.store, dataset.dictionary));
}

TEST(SnapshotTest, RoundTripGeneratedDataset) {
  Dictionary dict;
  TripleStore store;
  datagen::DblpOptions options;
  options.num_authors = 100;
  options.num_publications = 300;
  datagen::GenerateDblp(options, &dict, &store);
  store.Finalize();

  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(store, dict, &buffer).ok());
  const std::size_t snapshot_bytes = buffer.str().size();

  Dictionary loaded_dict;
  TripleStore loaded_store;
  ASSERT_TRUE(ReadSnapshot(&buffer, &loaded_dict, &loaded_store).ok());
  EXPECT_EQ(loaded_store.size(), store.size());
  EXPECT_EQ(CanonicalText(loaded_store, loaded_dict),
            CanonicalText(store, dict));

  // The varint-delta coding should be clearly smaller than N-Triples text.
  EXPECT_LT(snapshot_bytes, CanonicalText(store, dict).size() / 2);
}

TEST(SnapshotTest, PreservesTermIdsExactly) {
  // Stronger property the engine relies on: ids survive verbatim, so query
  // artifacts referencing TermIds stay valid across a snapshot reload.
  auto dataset = grasp::testing::MakeFigure1Dataset();
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(dataset.store, dataset.dictionary, &buffer).ok());
  Dictionary loaded;
  TripleStore loaded_store;
  ASSERT_TRUE(ReadSnapshot(&buffer, &loaded, &loaded_store).ok());
  for (TermId id = 0; id < dataset.dictionary.size(); ++id) {
    EXPECT_EQ(loaded.kind(id), dataset.dictionary.kind(id));
    EXPECT_EQ(loaded.text(id), dataset.dictionary.text(id));
  }
}

TEST(SnapshotTest, RequiresFinalizedStore) {
  Dictionary dict;
  TripleStore store;
  store.Add(dict.InternIri("http://e/s"), dict.InternIri("http://e/p"),
            dict.InternIri("http://e/o"));
  std::stringstream buffer;
  EXPECT_EQ(WriteSnapshot(store, dict, &buffer).code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, RequiresEmptyTarget) {
  auto dataset = grasp::testing::MakeFigure1Dataset();
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(dataset.store, dataset.dictionary, &buffer).ok());
  Dictionary dict;
  dict.InternIri("http://already/present");
  TripleStore store;
  EXPECT_EQ(ReadSnapshot(&buffer, &dict, &store).code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, RejectsBadMagic) {
  std::stringstream buffer("NOPE not a snapshot");
  Dictionary dict;
  TripleStore store;
  EXPECT_EQ(ReadSnapshot(&buffer, &dict, &store).code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, RejectsTruncation) {
  auto dataset = grasp::testing::MakeFigure1Dataset();
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(dataset.store, dataset.dictionary, &buffer).ok());
  const std::string full = buffer.str();
  // Chop the stream at several points; every prefix must fail cleanly.
  for (std::size_t cut : {std::size_t{3}, std::size_t{5}, full.size() / 4,
                          full.size() / 2, full.size() - 1}) {
    std::stringstream truncated(full.substr(0, cut));
    Dictionary dict;
    TripleStore store;
    EXPECT_EQ(ReadSnapshot(&truncated, &dict, &store).code(),
              StatusCode::kInvalidArgument)
        << "cut at " << cut;
  }
}

TEST(SnapshotTest, RejectsUnsupportedVersion) {
  auto dataset = grasp::testing::MakeFigure1Dataset();
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(dataset.store, dataset.dictionary, &buffer).ok());
  std::string bytes = buffer.str();
  bytes[4] = 99;  // version byte
  std::stringstream patched(bytes);
  Dictionary dict;
  TripleStore store;
  EXPECT_EQ(ReadSnapshot(&patched, &dict, &store).code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, FileRoundTrip) {
  auto dataset = grasp::testing::MakeFigure1Dataset();
  const std::string path = ::testing::TempDir() + "/grasp_snapshot_test.grdf";
  ASSERT_TRUE(
      WriteSnapshotFile(dataset.store, dataset.dictionary, path).ok());
  Dictionary dict;
  TripleStore store;
  ASSERT_TRUE(ReadSnapshotFile(path, &dict, &store).ok());
  EXPECT_EQ(store.size(), dataset.store.size());
  EXPECT_EQ(ReadSnapshotFile("/nonexistent/dir/x.grdf", &dict, &store).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace grasp::rdf
