#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "core/cost_model.h"
#include "core/exploration.h"
#include "core/exploration_reference.h"
#include "keyword/keyword_index.h"
#include "rdf/data_graph.h"
#include "summary/augmented_graph.h"
#include "summary/summary_graph.h"
#include "test_util.h"

namespace grasp::core {
namespace {

using summary::AugmentedGraph;
using summary::ElementId;
using summary::SummaryGraph;

/// Bundle keeping every stage of the pipeline alive for a test.
struct Pipeline {
  grasp::testing::Dataset dataset;
  std::unique_ptr<rdf::DataGraph> graph;
  std::unique_ptr<SummaryGraph> summary;
  std::unique_ptr<keyword::KeywordIndex> index;
  std::unique_ptr<AugmentedGraph> augmented;
};

Pipeline MakePipeline(grasp::testing::Dataset dataset,
                      const std::vector<std::string>& keywords) {
  Pipeline p{std::move(dataset), nullptr, nullptr, nullptr, nullptr};
  p.graph = std::make_unique<rdf::DataGraph>(
      rdf::DataGraph::Build(p.dataset.store, p.dataset.dictionary));
  p.summary = std::make_unique<SummaryGraph>(SummaryGraph::Build(*p.graph));
  p.index = std::make_unique<keyword::KeywordIndex>(
      keyword::KeywordIndex::Build(*p.graph));
  text::InvertedIndex::SearchOptions options;
  options.max_results = 8;
  std::vector<std::vector<keyword::KeywordMatch>> matches;
  for (const auto& kw : keywords) {
    matches.push_back(p.index->Lookup(kw, options));
  }
  p.augmented =
      std::make_unique<AugmentedGraph>(AugmentedGraph::Build(*p.summary, matches));
  return p;
}

/// Independent brute-force oracle for Definition 6 + Sec. V costs: exhaustive
/// DFS enumeration of all simple paths from every keyword element, then all
/// per-element combinations, deduplicated by structure with minimal cost.
struct OracleResult {
  std::map<std::string, double> cost_by_structure;
  std::vector<double> sorted_costs;
};

OracleResult BruteForce(const AugmentedGraph& g, const CostFunction& cost_fn,
                        std::uint32_t dmax) {
  const std::size_t m = g.num_keywords();
  struct Path {
    std::vector<ElementId> elements;
    double cost;
  };
  // paths[element_raw][kw] -> list of paths ending at that element.
  std::map<std::uint32_t, std::vector<std::vector<Path>>> paths_ending_at;

  auto neighbors = [&g](ElementId el) {
    std::vector<ElementId> out;
    if (el.is_node()) {
      for (summary::EdgeId e : g.IncidentEdges(el.index())) {
        out.push_back(ElementId::Edge(e));
      }
    } else {
      const auto& e = g.edge(el.index());
      out.push_back(ElementId::Node(e.from));
      if (e.to != e.from) out.push_back(ElementId::Node(e.to));
    }
    return out;
  };

  std::function<void(std::uint32_t, std::vector<ElementId>&, double)> dfs =
      [&](std::uint32_t kw, std::vector<ElementId>& stack, double cost) {
        ElementId cur = stack.back();
        auto& slot = paths_ending_at[cur.raw()];
        if (slot.empty()) slot.resize(m);
        slot[kw].push_back(Path{stack, cost});
        if (stack.size() > dmax) return;  // distance = elements - 1
        for (ElementId nb : neighbors(cur)) {
          if (std::find(stack.begin(), stack.end(), nb) != stack.end()) {
            continue;  // simple paths only
          }
          stack.push_back(nb);
          dfs(kw, stack, cost + cost_fn.ElementCost(nb));
          stack.pop_back();
        }
      };

  for (std::uint32_t kw = 0; kw < m; ++kw) {
    for (const auto& se : g.keyword_elements()[kw]) {
      std::vector<ElementId> stack{se.element};
      dfs(kw, stack, cost_fn.ElementCost(se.element));
    }
  }

  OracleResult oracle;
  for (const auto& [element_raw, per_kw] : paths_ending_at) {
    (void)element_raw;
    bool connecting = true;
    for (const auto& list : per_kw) connecting = connecting && !list.empty();
    if (!connecting) continue;
    // All combinations at this element.
    std::vector<std::size_t> choice(m, 0);
    while (true) {
      MatchingSubgraph sg;
      sg.cost = 0;
      for (std::uint32_t kw = 0; kw < m; ++kw) {
        const Path& path = per_kw[kw][choice[kw]];
        sg.cost += path.cost;
        for (ElementId el : path.elements) {
          if (el.is_edge()) {
            sg.edges.push_back(el.index());
            sg.nodes.push_back(g.edge(el.index()).from);
            sg.nodes.push_back(g.edge(el.index()).to);
          } else {
            sg.nodes.push_back(el.index());
          }
        }
      }
      std::sort(sg.nodes.begin(), sg.nodes.end());
      sg.nodes.erase(std::unique(sg.nodes.begin(), sg.nodes.end()),
                     sg.nodes.end());
      std::sort(sg.edges.begin(), sg.edges.end());
      sg.edges.erase(std::unique(sg.edges.begin(), sg.edges.end()),
                     sg.edges.end());
      const std::string key = sg.StructureKey();
      auto it = oracle.cost_by_structure.find(key);
      if (it == oracle.cost_by_structure.end() || sg.cost < it->second) {
        oracle.cost_by_structure[key] = sg.cost;
      }
      // Advance the mixed-radix counter.
      std::size_t j = 0;
      for (; j < m; ++j) {
        if (++choice[j] < per_kw[j].size()) break;
        choice[j] = 0;
      }
      if (j == m) break;
    }
  }
  for (const auto& [key, cost] : oracle.cost_by_structure) {
    (void)key;
    oracle.sorted_costs.push_back(cost);
  }
  std::sort(oracle.sorted_costs.begin(), oracle.sorted_costs.end());
  return oracle;
}

// ------------------------------------------------------ Figure 1 example --

class Fig1ExplorationTest : public ::testing::Test {
 protected:
  Fig1ExplorationTest()
      : pipeline_(MakePipeline(grasp::testing::MakeFigure1Dataset(),
                               {"2006", "cimiano", "aifb"})) {}

  Pipeline pipeline_;
};

TEST_F(Fig1ExplorationTest, FindsConnectingSubgraph) {
  ExplorationOptions options;
  options.k = 3;
  SubgraphExplorer explorer(*pipeline_.augmented, options);
  auto results = explorer.FindTopK();
  ASSERT_FALSE(results.empty());
  // Every result must contain one representative per keyword (Def. 6).
  for (const auto& sg : results) {
    ASSERT_EQ(sg.paths.size(), 3u);
    for (const auto& path : sg.paths) ASSERT_FALSE(path.empty());
  }
}

TEST_F(Fig1ExplorationTest, ResultsSortedByCost) {
  ExplorationOptions options;
  options.k = 5;
  SubgraphExplorer explorer(*pipeline_.augmented, options);
  auto results = explorer.FindTopK();
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i - 1].cost, results[i].cost);
  }
}

TEST_F(Fig1ExplorationTest, TopSubgraphIsPaperQueryShape) {
  // The cheapest interpretation should connect Publication(year 2006),
  // Researcher(name Cimiano) and Institute(name AIFB) through author and
  // worksAt — the Fig. 3 exploration result.
  ExplorationOptions options;
  options.k = 1;
  options.cost_model = CostModel::kMatching;
  SubgraphExplorer explorer(*pipeline_.augmented, options);
  auto results = explorer.FindTopK();
  ASSERT_EQ(results.size(), 1u);
  const auto& g = *pipeline_.augmented;
  std::set<std::string> labels;
  for (summary::EdgeId e : results[0].edges) {
    labels.insert(std::string(
        rdf::IriLocalName(pipeline_.dataset.dictionary.text(g.edge(e).label))));
  }
  EXPECT_TRUE(labels.count("year") > 0);
  EXPECT_TRUE(labels.count("name") > 0);
  EXPECT_TRUE(labels.count("author") > 0);
  EXPECT_TRUE(labels.count("worksAt") > 0);
}

TEST_F(Fig1ExplorationTest, PopTraceNondecreasing) {
  ExplorationOptions options;
  options.k = 5;
  options.record_pop_trace = true;  // off by default: hot-loop cost
  SubgraphExplorer explorer(*pipeline_.augmented, options);
  explorer.FindTopK();
  const auto& trace = explorer.pop_cost_trace();
  ASSERT_FALSE(trace.empty());
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1], trace[i] + 1e-12);
  }
}

TEST_F(Fig1ExplorationTest, ScratchReuseIsAllocationStable) {
  // A shared ExplorationScratch must reach a steady state: after the first
  // run sized every pool, repeated identical queries may not grow any of
  // them (grow_events freezes), and results stay identical.
  ExplorationOptions options;
  options.k = 5;
  ExplorationScratch scratch;
  auto run = [&] {
    SubgraphExplorer explorer(*pipeline_.augmented, options, &scratch);
    return explorer.FindTopK();
  };
  const auto first = run();
  const std::size_t grow_after_first = scratch.grow_events;
  run();
  const auto third = run();
  EXPECT_EQ(scratch.queries_run, 3u);
  EXPECT_EQ(scratch.grow_events, grow_after_first);
  ASSERT_EQ(first.size(), third.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].cost, third[i].cost);
    EXPECT_EQ(first[i].StructureKey(), third[i].StructureKey());
  }
}

TEST_F(Fig1ExplorationTest, StatsPopulated) {
  ExplorationOptions options;
  options.k = 2;
  SubgraphExplorer explorer(*pipeline_.augmented, options);
  explorer.FindTopK();
  const auto& stats = explorer.stats();
  EXPECT_GT(stats.cursors_created, 0u);
  EXPECT_GT(stats.cursors_popped, 0u);
  EXPECT_GT(stats.subgraphs_generated, 0u);
  EXPECT_TRUE(stats.early_terminated || stats.exhausted);
}

// -------------------------------------------------------- special shapes --

TEST(ExplorationShapesTest, SingleKeywordClassElement) {
  Pipeline p = MakePipeline(grasp::testing::MakeFigure1Dataset(),
                            {"publication"});
  ExplorationOptions options;
  options.k = 1;
  SubgraphExplorer explorer(*p.augmented, options);
  auto results = explorer.FindTopK();
  ASSERT_EQ(results.size(), 1u);
  // Cheapest subgraph for a single keyword is the keyword element itself.
  EXPECT_EQ(results[0].nodes.size(), 1u);
  EXPECT_TRUE(results[0].edges.empty());
}

TEST(ExplorationShapesTest, KeywordOnEdgeYieldsEdgeSubgraph) {
  Pipeline p = MakePipeline(grasp::testing::MakeFigure1Dataset(), {"author"});
  ExplorationOptions options;
  options.k = 1;
  SubgraphExplorer explorer(*p.augmented, options);
  auto results = explorer.FindTopK();
  ASSERT_EQ(results.size(), 1u);
  // The keyword element is an edge; the subgraph contains it plus endpoints.
  ASSERT_EQ(results[0].edges.size(), 1u);
  EXPECT_EQ(results[0].nodes.size(), 2u);
}

TEST(ExplorationShapesTest, CyclicMatchingSubgraph) {
  // Two parallel relations between the same classes, both matched by
  // keywords: the minimal connecting structure is a cycle (C1 = C2 via two
  // distinct edges), which tree-based algorithms cannot return.
  auto dataset = grasp::testing::MakeDataset({
      R"(e1 a C1)", R"(e2 a C2)",
      R"(e1 follows e2)", R"(e1 mentors e2)",
  });
  Pipeline p = MakePipeline(std::move(dataset), {"follows", "mentors"});
  ExplorationOptions options;
  options.k = 1;
  options.cost_model = CostModel::kPathLength;
  SubgraphExplorer explorer(*p.augmented, options);
  auto results = explorer.FindTopK();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].edges.size(), 2u);  // both edges in one subgraph
  EXPECT_EQ(results[0].nodes.size(), 2u);  // over just two nodes: a cycle
}

TEST(ExplorationShapesTest, DisconnectedKeywordsYieldNothing) {
  auto dataset = grasp::testing::MakeDataset({
      R"(e1 a C1)", R"(e1 name "alpha")",
      R"(e2 a C2)", R"(e2 name "beta")",
  });
  // alpha and beta live in disconnected components (no relations at all).
  Pipeline p = MakePipeline(std::move(dataset), {"alpha", "beta"});
  ExplorationOptions options;
  options.k = 3;
  SubgraphExplorer explorer(*p.augmented, options);
  EXPECT_TRUE(explorer.FindTopK().empty());
}

TEST(ExplorationShapesTest, UnmatchedKeywordYieldsNothing) {
  Pipeline p = MakePipeline(grasp::testing::MakeFigure1Dataset(),
                            {"publication", "zzzznonexistent"});
  ExplorationOptions options;
  SubgraphExplorer explorer(*p.augmented, options);
  EXPECT_TRUE(explorer.FindTopK().empty());
  EXPECT_EQ(explorer.stats().cursors_created, 0u);
}

TEST(ExplorationShapesTest, DmaxLimitsReach) {
  // aifb -- name -- Institute -- worksAt -- Researcher -- author --
  // Publication -- year -- 2006: distance 8 elements. dmax too small on
  // both sides => no connection.
  Pipeline p = MakePipeline(grasp::testing::MakeFigure1Dataset(),
                            {"2006", "aifb"});
  ExplorationOptions options;
  options.k = 1;
  options.dmax = 2;
  SubgraphExplorer explorer(*p.augmented, options);
  EXPECT_TRUE(explorer.FindTopK().empty());

  ExplorationOptions wide = options;
  wide.dmax = 8;
  SubgraphExplorer explorer2(*p.augmented, wide);
  EXPECT_FALSE(explorer2.FindTopK().empty());
}

TEST(ExplorationShapesTest, MaxPopsBudgetStops) {
  Pipeline p = MakePipeline(grasp::testing::MakeFigure1Dataset(),
                            {"2006", "cimiano", "aifb"});
  ExplorationOptions options;
  options.max_cursor_pops = 3;
  SubgraphExplorer explorer(*p.augmented, options);
  explorer.FindTopK();
  EXPECT_TRUE(explorer.stats().budget_exceeded);
  EXPECT_LE(explorer.stats().cursors_popped, 4u);
}

// Regression pin for the max_cursor_pops safety valve: the cap must
// terminate the exploration at a deterministic point — exactly cap+1 pops
// (the (cap+1)-th pop trips the valve before being processed) — with the
// budget_exceeded partial-result status set and neither of the natural
// end states claimed, identically in the flat and reference explorers and
// across repeated runs on a shared scratch.
TEST(ExplorationShapesTest, MaxPopsBudgetIsDeterministicPartialResult) {
  Pipeline p = MakePipeline(grasp::testing::MakeFigure1Dataset(),
                            {"2006", "cimiano", "aifb"});

  // Uncapped baseline: how much work the full run does, and its result.
  ExplorationOptions unlimited;
  unlimited.k = 5;
  SubgraphExplorer full(*p.augmented, unlimited);
  const auto full_results = full.FindTopK();
  ASSERT_FALSE(full_results.empty());
  ASSERT_GT(full.stats().cursors_popped, 4u);

  ExplorationOptions capped = unlimited;
  capped.max_cursor_pops = full.stats().cursors_popped / 2;

  ExplorationScratch scratch;
  std::vector<MatchingSubgraph> first_run;
  for (int repeat = 0; repeat < 2; ++repeat) {
    SubgraphExplorer flat(*p.augmented, capped, &scratch);
    const auto flat_results = flat.FindTopK();
    EXPECT_TRUE(flat.stats().budget_exceeded);
    EXPECT_FALSE(flat.stats().early_terminated);
    EXPECT_FALSE(flat.stats().exhausted);
    EXPECT_EQ(flat.stats().cursors_popped, capped.max_cursor_pops + 1);

    ReferenceExplorer reference(*p.augmented, capped);
    const auto ref_results = reference.FindTopK();
    EXPECT_TRUE(reference.stats().budget_exceeded);
    EXPECT_EQ(reference.stats().cursors_popped, capped.max_cursor_pops + 1);

    // The partial result is still a valid (sorted) prefix answer, and the
    // two explorers agree on it byte for byte.
    ASSERT_EQ(flat_results.size(), ref_results.size());
    for (std::size_t i = 0; i < flat_results.size(); ++i) {
      EXPECT_EQ(flat_results[i].cost, ref_results[i].cost) << i;
      EXPECT_EQ(flat_results[i].StructureKey(), ref_results[i].StructureKey())
          << i;
      if (i > 0) {
        EXPECT_GE(flat_results[i].cost, flat_results[i - 1].cost) << i;
      }
    }
    if (repeat == 0) {
      first_run = flat_results;
    } else {
      // Deterministic across runs (scratch reuse included).
      ASSERT_EQ(flat_results.size(), first_run.size());
      for (std::size_t i = 0; i < flat_results.size(); ++i) {
        EXPECT_EQ(flat_results[i].cost, first_run[i].cost) << i;
        EXPECT_EQ(flat_results[i].StructureKey(), first_run[i].StructureKey())
            << i;
      }
    }
  }
}

// -------------------------------------------- top-k vs brute-force oracle --

struct TopKCase {
  std::uint64_t seed;
  std::size_t k;
  CostModel model;
  bool prune;
};

class TopKOracleTest : public ::testing::TestWithParam<TopKCase> {};

TEST_P(TopKOracleTest, MatchesBruteForceOracle) {
  const TopKCase& param = GetParam();
  Rng rng(param.seed);
  // Sizes are chosen so that the exhaustive oracle (all simple paths x all
  // per-element combinations) stays tractable: the summary graph is a dense
  // multigraph over num_classes+1 nodes, and the oracle's work grows roughly
  // with (summary edges)^dmax.
  auto dataset = grasp::testing::MakeRandomDataset(
      param.seed, /*num_classes=*/3, /*num_entities=*/8,
      /*num_relations=*/10, /*num_predicates=*/3, /*num_attributes=*/5,
      /*value_pool=*/3);

  // Choose 1-3 keywords from generated vocabulary families.
  std::vector<std::string> candidates = {"class0", "class1", "class2",
                                         "rel0",   "rel1",   "rel2",
                                         "value0", "value1", "value2",
                                         "attr0",  "attr1"};
  rng.Shuffle(&candidates);
  const std::size_t num_keywords = 1 + rng.NextBelow(3);
  std::vector<std::string> keywords(candidates.begin(),
                                    candidates.begin() + num_keywords);

  Pipeline p = MakePipeline(std::move(dataset), keywords);
  for (const auto& k_i : p.augmented->keyword_elements()) {
    if (k_i.empty()) GTEST_SKIP() << "keyword without elements";
  }

  ExplorationOptions options;
  options.k = param.k;
  options.dmax = 4;
  options.cost_model = param.model;
  options.prune_paths_per_element = param.prune;

  SubgraphExplorer explorer(*p.augmented, options);
  auto results = explorer.FindTopK();

  CostFunction cost_fn(param.model, *p.augmented);
  OracleResult oracle = BruteForce(*p.augmented, cost_fn, options.dmax);

  const std::size_t expected_n =
      std::min(param.k, oracle.sorted_costs.size());
  ASSERT_EQ(results.size(), expected_n);
  for (std::size_t i = 0; i < expected_n; ++i) {
    EXPECT_NEAR(results[i].cost, oracle.sorted_costs[i], 1e-9)
        << "rank " << i << " keywords=" << Join(keywords, ",");
    // The returned structure's cost must equal the oracle's best cost for
    // that exact structure.
    auto it = oracle.cost_by_structure.find(results[i].StructureKey());
    ASSERT_NE(it, oracle.cost_by_structure.end());
    EXPECT_NEAR(results[i].cost, it->second, 1e-9);
  }
}

std::vector<TopKCase> MakeTopKCases() {
  std::vector<TopKCase> cases;
  std::uint64_t seed = 1000;
  for (CostModel model : {CostModel::kPathLength, CostModel::kPopularity,
                          CostModel::kMatching}) {
    for (std::size_t k : {1u, 3u, 6u}) {
      for (bool prune : {true, false}) {
        for (int i = 0; i < 3; ++i) {
          cases.push_back(TopKCase{seed++, k, model, prune});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, TopKOracleTest,
                         ::testing::ValuesIn(MakeTopKCases()));

// ------------------------------------------- distance-guided exploration --

/// The BFS distance index itself, on the running example.
TEST(DistanceIndexTest, Figure1Distances) {
  Pipeline p = MakePipeline(grasp::testing::MakeFigure1Dataset(),
                            {"2006", "aifb"});
  auto index = summary::KeywordDistanceIndex::Build(*p.augmented);
  ASSERT_EQ(index.num_keywords(), 2u);
  // Keyword elements themselves are at distance 0.
  for (std::size_t kw = 0; kw < 2; ++kw) {
    for (const auto& se : p.augmented->keyword_elements()[kw]) {
      EXPECT_EQ(index.Distance(kw, se.element), 0u);
    }
  }
  // The '2006' value node reaches the 'aifb' value node via
  // year-edge, Publication, author-edge, Researcher, worksAt-edge,
  // Institute, name-edge, aifb: 8 hops.
  const auto& k2006 = p.augmented->keyword_elements()[0];
  ASSERT_FALSE(k2006.empty());
  EXPECT_EQ(index.Distance(1, k2006[0].element), 8u);
}

TEST(DistanceIndexTest, UnreachableKeywordBlocksEverything) {
  auto dataset = grasp::testing::MakeDataset({
      R"(e1 a C1)", R"(e1 name "alpha")",
      R"(e2 a C2)", R"(e2 name "beta")",
  });
  Pipeline p = MakePipeline(std::move(dataset), {"alpha", "beta"});
  auto index = summary::KeywordDistanceIndex::Build(*p.augmented);
  const auto& alpha = p.augmented->keyword_elements()[0];
  ASSERT_FALSE(alpha.empty());
  // From alpha's element, beta is unreachable: no cursor may start at all.
  EXPECT_FALSE(index.CanStillConnect(0, alpha[0].element, 0, 12));
}

/// Soundness of the pruning: with distance_pruning on, the top-k result is
/// identical to the unpruned run, while never creating more cursors.
class DistancePruningTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistancePruningTest, SameResultsFewerCursors) {
  auto dataset = grasp::testing::MakeRandomDataset(GetParam(), 4, 12, 14, 3, 8, 4);
  Pipeline p = MakePipeline(std::move(dataset), {"class0", "value1", "rel2"});
  for (const auto& k_i : p.augmented->keyword_elements()) {
    if (k_i.empty()) GTEST_SKIP();
  }
  for (CostModel model : {CostModel::kPathLength, CostModel::kMatching}) {
    for (std::uint32_t dmax : {4u, 6u, 10u}) {
      ExplorationOptions options;
      options.k = 5;
      options.dmax = dmax;
      options.cost_model = model;

      SubgraphExplorer plain(*p.augmented, options);
      auto expected = plain.FindTopK();

      options.distance_pruning = true;
      SubgraphExplorer pruned(*p.augmented, options);
      auto actual = pruned.FindTopK();

      ASSERT_EQ(actual.size(), expected.size());
      for (std::size_t i = 0; i < actual.size(); ++i) {
        EXPECT_NEAR(actual[i].cost, expected[i].cost, 1e-9);
        EXPECT_EQ(actual[i].StructureKey(), expected[i].StructureKey());
      }
      EXPECT_LE(pruned.stats().cursors_created,
                plain.stats().cursors_created);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistancePruningTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

/// Theorem 1 as a property: pops happen in non-decreasing cost order on
/// random graphs under all cost models.
class Theorem1Test : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1Test, PopsNondecreasing) {
  auto dataset = grasp::testing::MakeRandomDataset(GetParam(), 4, 12, 20, 3, 8, 4);
  Pipeline p = MakePipeline(std::move(dataset), {"class0", "value1", "rel2"});
  for (const auto& k_i : p.augmented->keyword_elements()) {
    if (k_i.empty()) GTEST_SKIP();
  }
  for (CostModel model : {CostModel::kPathLength, CostModel::kPopularity,
                          CostModel::kMatching}) {
    ExplorationOptions options;
    options.k = 4;
    options.cost_model = model;
    options.record_pop_trace = true;  // the property under test
    SubgraphExplorer explorer(*p.augmented, options);
    explorer.FindTopK();
    const auto& trace = explorer.pop_cost_trace();
    for (std::size_t i = 1; i < trace.size(); ++i) {
      ASSERT_LE(trace[i - 1], trace[i] + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Test,
                         ::testing::Values(21, 42, 63, 84, 105, 126));

}  // namespace
}  // namespace grasp::core
