#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "datagen/dblp_gen.h"
#include "datagen/lubm_gen.h"
#include "datagen/tap_gen.h"
#include "datagen/workload.h"
#include "query/evaluator.h"
#include "rdf/data_graph.h"
#include "rdf/ntriples.h"

namespace grasp::datagen {
namespace {

std::string Serialize(const rdf::TripleStore& store,
                      const rdf::Dictionary& dict) {
  std::ostringstream out;
  rdf::WriteNTriples(store, dict, &out);
  return out.str();
}

// ----------------------------------------------------------- determinism --

TEST(DatagenTest, DblpDeterministicInSeed) {
  DblpOptions options;
  options.num_authors = 50;
  options.num_publications = 120;
  rdf::Dictionary d1, d2;
  rdf::TripleStore s1, s2;
  GenerateDblp(options, &d1, &s1);
  GenerateDblp(options, &d2, &s2);
  s1.Finalize();
  s2.Finalize();
  EXPECT_EQ(Serialize(s1, d1), Serialize(s2, d2));
}

TEST(DatagenTest, DblpSeedChangesBulkNotAnchors) {
  DblpOptions a, b;
  a.num_authors = b.num_authors = 50;
  a.num_publications = b.num_publications = 120;
  b.seed = a.seed + 1;
  rdf::Dictionary d1, d2;
  rdf::TripleStore s1, s2;
  GenerateDblp(a, &d1, &s1);
  GenerateDblp(b, &d2, &s2);
  s1.Finalize();
  s2.Finalize();
  EXPECT_NE(Serialize(s1, d1), Serialize(s2, d2));
  // Anchor labels survive any seed.
  for (const char* anchor : {"Philipp Cimiano", "Jennifer Widom",
                             "algorithm analysis survey"}) {
    EXPECT_NE(d1.Find(rdf::TermKind::kLiteral, anchor), rdf::kInvalidTermId);
    EXPECT_NE(d2.Find(rdf::TermKind::kLiteral, anchor), rdf::kInvalidTermId);
  }
}

TEST(DatagenTest, GeneratorsScaleWithOptions) {
  rdf::Dictionary ds, dl;
  rdf::TripleStore ss, sl;
  DblpOptions small, large;
  small.num_publications = 100;
  small.num_authors = 40;
  large.num_publications = 400;
  large.num_authors = 160;
  GenerateDblp(small, &ds, &ss);
  GenerateDblp(large, &dl, &sl);
  ss.Finalize();
  sl.Finalize();
  EXPECT_GT(sl.size(), 2 * ss.size());
}

TEST(DatagenTest, LubmSchemaShape) {
  rdf::Dictionary dict;
  rdf::TripleStore store;
  LubmOptions options;
  options.num_universities = 2;
  GenerateLubm(options, &dict, &store);
  store.Finalize();
  auto graph = rdf::DataGraph::Build(store, dict);
  std::set<std::string> classes;
  for (const auto& v : graph.vertices()) {
    if (v.kind == rdf::VertexKind::kClass) {
      classes.insert(std::string(rdf::IriLocalName(dict.text(v.term))));
    }
  }
  // The LUBM core classes must all be present.
  for (const char* cls : {"University", "Department", "FullProfessor",
                          "GraduateStudent", "Course", "Publication"}) {
    EXPECT_TRUE(classes.count(cls) > 0) << cls;
  }
}

TEST(DatagenTest, TapClassCountIsParameter) {
  rdf::Dictionary d1, d2;
  rdf::TripleStore s1, s2;
  TapOptions few, many;
  few.num_classes = 24;
  many.num_classes = 96;
  GenerateTap(few, &d1, &s1);
  GenerateTap(many, &d2, &s2);
  s1.Finalize();
  s2.Finalize();
  auto count_classes = [](const rdf::TripleStore& store,
                          const rdf::Dictionary& dict) {
    auto graph = rdf::DataGraph::Build(store, dict);
    std::size_t classes = 0;
    for (const auto& v : graph.vertices()) {
      classes += v.kind == rdf::VertexKind::kClass ? 1 : 0;
    }
    return classes;
  };
  EXPECT_GE(count_classes(s2, d2), 2 * count_classes(s1, d1));
}

// ------------------------------------------------- workload realizability --

/// Every DBLP gold query must have at least one answer on the generated
/// data — otherwise Fig. 4 would measure against impossible goals.
TEST(WorkloadTest, DblpGoldQueriesAreRealizable) {
  rdf::Dictionary dict;
  rdf::TripleStore store;
  DblpOptions options;  // defaults = the Fig. 4 configuration
  GenerateDblp(options, &dict, &store);
  store.Finalize();
  for (const auto& wq : DblpEffectivenessWorkload()) {
    auto gold = BuildGoldQuery(wq, &dict, kDblpNs);
    ASSERT_FALSE(gold.empty()) << wq.id;
    query::EvalOptions eval_options;
    eval_options.limit = 1;
    auto result = Evaluate(store, gold, eval_options);
    ASSERT_TRUE(result.ok()) << wq.id;
    EXPECT_FALSE(result->rows.empty())
        << wq.id << ": gold query has no answers on the generated data";
  }
}

TEST(WorkloadTest, TapGoldQueriesAreRealizable) {
  rdf::Dictionary dict;
  rdf::TripleStore store;
  TapOptions options;
  GenerateTap(options, &dict, &store);
  store.Finalize();
  for (const auto& wq : TapEffectivenessWorkload()) {
    auto gold = BuildGoldQuery(wq, &dict, kTapNs);
    query::EvalOptions eval_options;
    eval_options.limit = 1;
    auto result = Evaluate(store, gold, eval_options);
    ASSERT_TRUE(result.ok()) << wq.id;
    EXPECT_FALSE(result->rows.empty()) << wq.id;
  }
}

TEST(WorkloadTest, PerformanceWorkloadOrderedByKeywordCount) {
  const auto workload = DblpPerformanceWorkload();
  ASSERT_EQ(workload.size(), 10u);
  for (std::size_t i = 1; i < workload.size(); ++i) {
    EXPECT_GE(workload[i].keywords.size(), workload[i - 1].keywords.size());
  }
}

// ------------------------------------------------- reserved anchor words --

/// DESIGN.md §7: bulk titles must not reuse the distinctive words of the
/// anchor titles, or the Fig. 4 gold queries drown in same-cost lookalikes.
TEST(DatagenTest, BulkTitlesAvoidAnchorVocabulary) {
  rdf::Dictionary dict;
  rdf::TripleStore store;
  DblpOptions options;
  GenerateDblp(options, &dict, &store);
  store.Finalize();

  const std::set<std::string> reserved = {
      "keyword", "search", "stream", "join", "xml",     "schema",
      "semantic", "web",   "learning", "transaction",   "integration",
      "algorithm", "sensor", "network"};
  const rdf::TermId title =
      dict.Find(rdf::TermKind::kIri, std::string(kDblpNs) + "title");
  ASSERT_NE(title, rdf::kInvalidTermId);

  // Count titles containing reserved words; only the 15 anchors may.
  std::size_t with_reserved = 0;
  store.Scan({rdf::kInvalidTermId, title, rdf::kInvalidTermId},
             [&](const rdf::Triple& t) {
               std::istringstream words{std::string(dict.text(t.object))};
               for (std::string w; words >> w;) {
                 if (reserved.count(w) > 0) {
                   ++with_reserved;
                   break;
                 }
               }
               return true;
             });
  EXPECT_LE(with_reserved, 15u);
}

}  // namespace
}  // namespace grasp::datagen
