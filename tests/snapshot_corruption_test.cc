// Corruption robustness of the index-snapshot loader: truncated files,
// bit flips, wrong magic/version, oversized or misaligned section entries
// and element-size mismatches must all be rejected with a clean Status —
// no crash, no out-of-bounds read (the CI sanitize job runs this suite
// under ASan/UBSan), no partially constructed engine. The loader never
// trusts a length or offset read from the file without bounds-checking it
// against the real file size first.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "snapshot/format.h"
#include "test_util.h"

namespace grasp::core {
namespace {

using snapshot::FileHeader;
using snapshot::SectionEntry;

std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "grasp_corrupt_" + tag + ".snap";
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// Fixture: one valid Fig. 1 snapshot plus the baseline answer every
/// mutation is compared against.
class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = grasp::testing::MakeFigure1Dataset();
    engine_ = std::make_unique<KeywordSearchEngine>(dataset_.store,
                                                    dataset_.dictionary);
    path_ = TempPath(::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
    ASSERT_TRUE(engine_->SaveIndex(path_).ok());
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), sizeof(FileHeader));
    baseline_ = Canonical(*engine_);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  static std::vector<std::string> Canonical(const KeywordSearchEngine& e) {
    std::vector<std::string> out;
    for (const auto& rq : e.Search({"2006", "cimiano", "aifb"}, 5).queries) {
      out.push_back(rq.query.CanonicalString());
    }
    return out;
  }

  /// Writes `mutated` and asserts the loader either rejects it cleanly or
  /// (when the mutation only touched bytes outside every checksummed
  /// region, e.g. page padding) loads an engine with the baseline answers.
  void ExpectRejectedOrHarmless(const std::vector<char>& mutated,
                                const std::string& context) {
    WriteFileBytes(path_, mutated);
    auto opened = KeywordSearchEngine::Open(path_);
    if (!opened.ok()) {
      EXPECT_FALSE(opened.status().message().empty()) << context;
      return;
    }
    EXPECT_EQ(Canonical(**opened), baseline_) << context;
  }

  /// Same, but the load must fail outright.
  void ExpectRejected(const std::vector<char>& mutated,
                      const std::string& context) {
    WriteFileBytes(path_, mutated);
    auto opened = KeywordSearchEngine::Open(path_);
    EXPECT_FALSE(opened.ok()) << context;
  }

  /// Patches the section table entry at `index` and recomputes the header's
  /// table checksum, so the mutation reaches the loader's *bounds checks*
  /// instead of being caught by the checksum gate.
  std::vector<char> WithPatchedEntry(
      std::size_t index, const std::function<void(SectionEntry*)>& patch) {
    std::vector<char> mutated = bytes_;
    FileHeader header;
    std::memcpy(&header, mutated.data(), sizeof(header));
    EXPECT_LT(index, header.section_count);
    char* table = mutated.data() + sizeof(FileHeader);
    SectionEntry entry;
    std::memcpy(&entry, table + index * sizeof(SectionEntry), sizeof(entry));
    patch(&entry);
    std::memcpy(table + index * sizeof(SectionEntry), &entry, sizeof(entry));
    header.table_checksum = snapshot::Checksum64(
        table, header.section_count * sizeof(SectionEntry));
    std::memcpy(mutated.data(), &header, sizeof(header));
    return mutated;
  }

  grasp::testing::Dataset dataset_;
  std::unique_ptr<KeywordSearchEngine> engine_;
  std::string path_;
  std::vector<char> bytes_;
  std::vector<std::string> baseline_;
};

TEST_F(SnapshotCorruptionTest, ValidBaselineLoads) {
  auto opened = KeywordSearchEngine::Open(path_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(Canonical(**opened), baseline_);
}

TEST_F(SnapshotCorruptionTest, MissingFile) {
  auto opened = KeywordSearchEngine::Open(path_ + ".does-not-exist");
  EXPECT_FALSE(opened.ok());
}

TEST_F(SnapshotCorruptionTest, Truncations) {
  // Every prefix class: empty, sub-header, mid-table, mid-payload, off-by-1.
  for (std::size_t size :
       {std::size_t{0}, std::size_t{4}, sizeof(FileHeader) - 1,
        sizeof(FileHeader) + 7, sizeof(FileHeader) + 3 * sizeof(SectionEntry),
        bytes_.size() / 2, bytes_.size() - 1}) {
    std::vector<char> truncated(bytes_.begin(), bytes_.begin() + size);
    ExpectRejected(truncated, "truncate to " + std::to_string(size));
  }
}

TEST_F(SnapshotCorruptionTest, TrailingGarbageRejected) {
  // file_size is pinned in the header, so appended bytes are detected.
  std::vector<char> grown = bytes_;
  grown.insert(grown.end(), 64, '\x5a');
  ExpectRejected(grown, "trailing garbage");
}

TEST_F(SnapshotCorruptionTest, BitFlipsEverywhere) {
  // Sampled single-bit flips across the whole image, including the header
  // and section table. Flips in checksummed regions must be rejected; flips
  // in page-padding gaps are invisible and must leave results identical.
  const std::size_t stride = std::max<std::size_t>(1, bytes_.size() / 97);
  for (std::size_t offset = 0; offset < bytes_.size(); offset += stride) {
    std::vector<char> mutated = bytes_;
    mutated[offset] = static_cast<char>(mutated[offset] ^ (1 << (offset % 8)));
    ExpectRejectedOrHarmless(mutated, "bit flip at " + std::to_string(offset));
  }
}

TEST_F(SnapshotCorruptionTest, WrongMagic) {
  std::vector<char> mutated = bytes_;
  mutated[0] = 'X';
  ExpectRejected(mutated, "magic");
}

TEST_F(SnapshotCorruptionTest, WrongVersion) {
  std::vector<char> mutated = bytes_;
  FileHeader header;
  std::memcpy(&header, mutated.data(), sizeof(header));
  header.format_version = snapshot::kFormatVersion + 1;
  std::memcpy(mutated.data(), &header, sizeof(header));
  ExpectRejected(mutated, "version");
}

TEST_F(SnapshotCorruptionTest, SectionCountOutOfRange) {
  std::vector<char> mutated = bytes_;
  FileHeader header;
  std::memcpy(&header, mutated.data(), sizeof(header));
  header.section_count = snapshot::kMaxSections + 1;
  std::memcpy(mutated.data(), &header, sizeof(header));
  ExpectRejected(mutated, "section count");
}

TEST_F(SnapshotCorruptionTest, OversizedSectionLength) {
  // byte_length far beyond the file, with a *valid* table checksum: only
  // the loader's offset/length bounds check can catch it.
  ExpectRejected(WithPatchedEntry(2,
                                  [](SectionEntry* e) {
                                    e->byte_length = 1ull << 40;
                                  }),
                 "oversized length");
}

TEST_F(SnapshotCorruptionTest, SectionLengthOverflowingOffset) {
  // offset + byte_length wraps around 2^64; the overflow-safe containment
  // check must still reject it.
  ExpectRejected(WithPatchedEntry(2,
                                  [](SectionEntry* e) {
                                    e->byte_length =
                                        ~std::uint64_t{0} - e->offset + 2;
                                  }),
                 "overflowing length");
}

TEST_F(SnapshotCorruptionTest, SectionOffsetBeyondFile) {
  ExpectRejected(WithPatchedEntry(1,
                                  [](SectionEntry* e) {
                                    e->offset = 1ull << 40;
                                  }),
                 "offset beyond file");
}

TEST_F(SnapshotCorruptionTest, MisalignedSectionOffset) {
  ExpectRejected(WithPatchedEntry(1,
                                  [](SectionEntry* e) { e->offset += 8; }),
                 "misaligned offset");
}

TEST_F(SnapshotCorruptionTest, ElementSizeMismatch) {
  ExpectRejected(WithPatchedEntry(0,
                                  [](SectionEntry* e) { e->elem_size += 4; }),
                 "element size");
}

TEST_F(SnapshotCorruptionTest, ZeroElementSize) {
  ExpectRejected(WithPatchedEntry(0,
                                  [](SectionEntry* e) { e->elem_size = 0; }),
                 "zero element size");
}

TEST_F(SnapshotCorruptionTest, DuplicateSectionId) {
  ExpectRejected(WithPatchedEntry(1,
                                  [](SectionEntry* e) {
                                    e->id = snapshot::kSectionMeta;
                                  }),
                 "duplicate id");
}

TEST_F(SnapshotCorruptionTest, NotASnapshotAtAll) {
  std::vector<char> junk(8192, '\x42');
  ExpectRejected(junk, "junk file");
  std::vector<char> empty;
  ExpectRejected(empty, "empty file");
}

}  // namespace
}  // namespace grasp::core
