#include <gtest/gtest.h>

#include <algorithm>

#include "keyword/keyword_index.h"
#include "rdf/data_graph.h"
#include "test_util.h"

namespace grasp::keyword {
namespace {

using Kind = KeywordMatch::Kind;

class KeywordIndexTest : public ::testing::Test {
 protected:
  KeywordIndexTest()
      : dataset_(grasp::testing::MakeFigure1Dataset()),
        graph_(rdf::DataGraph::Build(dataset_.store, dataset_.dictionary)),
        index_(KeywordIndex::Build(graph_)) {}

  std::vector<KeywordMatch> Lookup(std::string_view kw) const {
    text::InvertedIndex::SearchOptions options;
    return index_.Lookup(kw, options);
  }

  bool HasMatch(const std::vector<KeywordMatch>& matches, Kind kind,
                std::string_view text) const {
    const auto& dict = dataset_.dictionary;
    return std::any_of(matches.begin(), matches.end(), [&](const auto& m) {
      if (m.kind != kind) return false;
      const std::string_view full = dict.text(m.term);
      return full == text || rdf::IriLocalName(full) == text;
    });
  }

  grasp::testing::Dataset dataset_;
  rdf::DataGraph graph_;
  KeywordIndex index_;
};

TEST_F(KeywordIndexTest, KeywordMapsToClass) {
  auto matches = Lookup("publication");
  EXPECT_TRUE(HasMatch(matches, Kind::kClass, "Publication"));
}

TEST_F(KeywordIndexTest, KeywordMapsToValueVertex) {
  auto matches = Lookup("2006");
  ASSERT_TRUE(HasMatch(matches, Kind::kValue, "2006"));
  // The [V-vertex, A-edge, (C-vertices)] structure: 2006 is a `year` of
  // Publications.
  for (const auto& m : matches) {
    if (m.kind != Kind::kValue) continue;
    ASSERT_EQ(m.contexts.size(), 1u);
    EXPECT_EQ(rdf::IriLocalName(
                  dataset_.dictionary.text(m.contexts[0].attribute)),
              "year");
    ASSERT_EQ(m.contexts[0].classes.size(), 1u);
    EXPECT_EQ(rdf::IriLocalName(
                  dataset_.dictionary.text(m.contexts[0].classes[0])),
              "Publication");
  }
}

TEST_F(KeywordIndexTest, KeywordMapsToRelationLabel) {
  auto matches = Lookup("author");
  EXPECT_TRUE(HasMatch(matches, Kind::kRelationLabel, "author"));
}

TEST_F(KeywordIndexTest, KeywordMapsToAttributeLabel) {
  auto matches = Lookup("name");
  ASSERT_TRUE(HasMatch(matches, Kind::kAttributeLabel, "name"));
  for (const auto& m : matches) {
    if (m.kind != Kind::kAttributeLabel) continue;
    ASSERT_EQ(m.contexts.size(), 1u);
    // `name` appears on Project, Researcher and Institute subjects.
    EXPECT_EQ(m.contexts[0].classes.size(), 3u);
  }
}

TEST_F(KeywordIndexTest, EntityUrisAreNotIndexed) {
  // E-vertices are deliberately omitted (Sec. IV-A): looking up an entity's
  // local name yields no match unless it collides with an indexed label.
  auto matches = Lookup("pub1");
  EXPECT_TRUE(matches.empty());
}

TEST_F(KeywordIndexTest, CamelCasePredicateFindable) {
  auto matches = Lookup("works");
  EXPECT_TRUE(HasMatch(matches, Kind::kRelationLabel, "worksAt"));
}

TEST_F(KeywordIndexTest, MultiWordValueFindableByOneWord) {
  auto matches = Lookup("cimiano");
  EXPECT_TRUE(HasMatch(matches, Kind::kValue, "P._Cimiano"));
}

TEST_F(KeywordIndexTest, FuzzyKeywordStillMatches) {
  auto matches = Lookup("cimano");
  EXPECT_TRUE(HasMatch(matches, Kind::kValue, "P._Cimiano"));
  for (const auto& m : matches) {
    EXPECT_LE(m.score, 1.0);
    EXPECT_GT(m.score, 0.0);
  }
}

TEST_F(KeywordIndexTest, ScoresSortedDescending) {
  auto matches = Lookup("pro");
  for (std::size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i - 1].score, matches[i].score);
  }
}

TEST_F(KeywordIndexTest, StatsExposeSizes) {
  EXPECT_GT(index_.num_elements(), 0u);
  EXPECT_GT(index_.vocabulary_size(), 0u);
  EXPECT_GT(index_.MemoryUsageBytes(), 0u);
}

TEST(KeywordIndexEdgeTest, UntypedSubjectYieldsThingContext) {
  auto dataset = grasp::testing::MakeDataset({R"(e1 label "loner")"});
  rdf::DataGraph graph =
      rdf::DataGraph::Build(dataset.store, dataset.dictionary);
  KeywordIndex index = KeywordIndex::Build(graph);
  text::InvertedIndex::SearchOptions options;
  auto matches = index.Lookup("loner", options);
  ASSERT_FALSE(matches.empty());
  ASSERT_EQ(matches[0].contexts.size(), 1u);
  ASSERT_EQ(matches[0].contexts[0].classes.size(), 1u);
  EXPECT_EQ(matches[0].contexts[0].classes[0], rdf::kThingTerm);
}

TEST(KeywordIndexEdgeTest, ValueUnderTwoAttributesHasTwoContexts) {
  auto dataset = grasp::testing::MakeDataset({
      R"(e1 a Publication)",
      R"(e2 a Proceedings)",
      R"(e1 year "2006")",
      R"(e2 volume "2006")",
  });
  rdf::DataGraph graph =
      rdf::DataGraph::Build(dataset.store, dataset.dictionary);
  KeywordIndex index = KeywordIndex::Build(graph);
  text::InvertedIndex::SearchOptions options;
  auto matches = index.Lookup("2006", options);
  ASSERT_FALSE(matches.empty());
  bool found_value = false;
  for (const auto& m : matches) {
    if (m.kind != Kind::kValue) continue;
    found_value = true;
    EXPECT_EQ(m.contexts.size(), 2u);  // year and volume
  }
  EXPECT_TRUE(found_value);
}

TEST(KeywordIndexEdgeTest, MixedRelationAndAttributeLabel) {
  // The same predicate used with IRI and literal objects produces both a
  // relation-label and an attribute-label element.
  auto dataset = grasp::testing::MakeDataset({
      R"(e1 ref e2)",
      R"(e1 ref "external")",
  });
  rdf::DataGraph graph =
      rdf::DataGraph::Build(dataset.store, dataset.dictionary);
  KeywordIndex index = KeywordIndex::Build(graph);
  text::InvertedIndex::SearchOptions options;
  auto matches = index.Lookup("ref", options);
  bool rel = false, attr = false;
  for (const auto& m : matches) {
    rel = rel || m.kind == Kind::kRelationLabel;
    attr = attr || m.kind == Kind::kAttributeLabel;
  }
  EXPECT_TRUE(rel);
  EXPECT_TRUE(attr);
}

}  // namespace
}  // namespace grasp::keyword
