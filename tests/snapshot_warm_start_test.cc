// Differential warm-start suite: an engine loaded from an index snapshot
// must be byte-identical to the cold-built engine it was saved from — same
// top-k queries (canonical strings), same costs, same subgraph structure
// keys, same exploration counters — over the paper's running example
// (Fig. 1), a LUBM slice, TAP-style generated data, seeded random datasets
// and randomized keyword sets, serially and under SearchBatch concurrency.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "datagen/lubm_gen.h"
#include "datagen/tap_gen.h"
#include "test_util.h"

namespace grasp::core {
namespace {

using grasp::testing::Dataset;

std::string TempSnapshotPath(const std::string& tag) {
  return ::testing::TempDir() + "grasp_warm_" + tag + ".snap";
}

/// Saves `cold`'s index and reopens it warm; the caller owns the result.
std::unique_ptr<KeywordSearchEngine> Reopen(const KeywordSearchEngine& cold,
                                            const std::string& tag) {
  const std::string path = TempSnapshotPath(tag);
  const Status saved = cold.SaveIndex(path);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  auto opened = KeywordSearchEngine::Open(path);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  std::remove(path.c_str());
  return std::move(opened).value();
}

/// Byte-identity of two search results: ranked queries, costs, structure.
void ExpectSameResult(const KeywordSearchEngine::SearchResult& cold,
                      const KeywordSearchEngine::SearchResult& warm,
                      const std::string& context) {
  ASSERT_EQ(cold.queries.size(), warm.queries.size()) << context;
  for (std::size_t i = 0; i < cold.queries.size(); ++i) {
    EXPECT_EQ(cold.queries[i].query.CanonicalString(),
              warm.queries[i].query.CanonicalString())
        << context << " rank " << i;
    EXPECT_EQ(cold.queries[i].cost, warm.queries[i].cost)
        << context << " rank " << i;
    EXPECT_EQ(cold.queries[i].subgraph.StructureKey(),
              warm.queries[i].subgraph.StructureKey())
        << context << " rank " << i;
  }
  EXPECT_EQ(cold.matches_per_keyword, warm.matches_per_keyword) << context;
  EXPECT_EQ(cold.exploration_stats.cursors_created,
            warm.exploration_stats.cursors_created)
      << context;
  EXPECT_EQ(cold.exploration_stats.cursors_popped,
            warm.exploration_stats.cursors_popped)
      << context;
  EXPECT_EQ(cold.exploration_stats.subgraphs_generated,
            warm.exploration_stats.subgraphs_generated)
      << context;
  EXPECT_EQ(cold.exploration_stats.subgraphs_deduplicated,
            warm.exploration_stats.subgraphs_deduplicated)
      << context;
}

void ExpectWarmMatchesCold(
    const Dataset& dataset, const std::string& tag,
    const std::vector<std::vector<std::string>>& keyword_sets,
    std::size_t k = 5) {
  KeywordSearchEngine cold(dataset.store, dataset.dictionary);
  std::unique_ptr<KeywordSearchEngine> warm = Reopen(cold, tag);
  ASSERT_NE(warm, nullptr);
  // Queries run twice so the second round exercises both engines'
  // augmentation caches the same way.
  for (int round = 0; round < 2; ++round) {
    for (const auto& keywords : keyword_sets) {
      const auto cold_result = cold.Search(keywords, k);
      const auto warm_result = warm->Search(keywords, k);
      ExpectSameResult(cold_result, warm_result,
                       StrFormat("%s round %d %s", tag.c_str(), round,
                                 Join(keywords, "+").c_str()));
    }
  }
}

TEST(SnapshotWarmStartTest, Figure1RunningExample) {
  ExpectWarmMatchesCold(grasp::testing::MakeFigure1Dataset(), "fig1",
                        {{"2006", "cimiano", "aifb"},
                         {"name"},
                         {"publication", "project"},
                         {"researcher", "institute"},
                         {">2000", "publication"}});
}

TEST(SnapshotWarmStartTest, LubmSlice) {
  Dataset dataset;
  datagen::LubmOptions options;
  options.num_universities = 1;
  options.departments_per_university = 2;
  datagen::GenerateLubm(options, &dataset.dictionary, &dataset.store);
  dataset.store.Finalize();
  ExpectWarmMatchesCold(dataset, "lubm",
                        {{"publication", "professor"},
                         {"course", "student", "name"},
                         {"department"}});
}

TEST(SnapshotWarmStartTest, TapStyle) {
  Dataset dataset;
  datagen::TapOptions options;
  options.num_classes = 32;
  datagen::GenerateTap(options, &dataset.dictionary, &dataset.store);
  dataset.store.Finalize();
  ExpectWarmMatchesCold(dataset, "tap",
                        {{"album", "team"}, {"city", "player", "name"}});
}

/// Seeded random datasets with randomized keyword sets drawn from the
/// generator vocabulary.
class RandomizedWarmStartTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomizedWarmStartTest, RandomDatasetAndKeywords) {
  Rng rng(GetParam() * 6151 + 7);
  Dataset dataset = grasp::testing::MakeRandomDataset(
      GetParam(), /*num_classes=*/4, /*num_entities=*/16,
      /*num_relations=*/20, /*num_predicates=*/3, /*num_attributes=*/12,
      /*value_pool=*/5);
  std::vector<std::string> vocabulary = {"class0", "class1", "class2",
                                         "class3", "rel0",   "rel1",
                                         "value0", "value1", "attr0"};
  std::vector<std::vector<std::string>> keyword_sets;
  for (int round = 0; round < 4; ++round) {
    rng.Shuffle(&vocabulary);
    const std::size_t m = 1 + rng.NextBelow(3);
    keyword_sets.emplace_back(vocabulary.begin(), vocabulary.begin() + m);
  }
  ExpectWarmMatchesCold(
      dataset, StrFormat("random%llu",
                         static_cast<unsigned long long>(GetParam())),
      keyword_sets, /*k=*/1 + rng.NextBelow(8));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedWarmStartTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// Predicate-scoped queries against a warm-started engine: the scope masks
// are rebuilt lazily over the mapped summary (zero index rebuild) and the
// filtered results must be byte-identical to the cold-built engine's, on
// the first scoped query and on cache-hit repeats.
TEST(SnapshotWarmStartTest, ScopedQueriesMatchColdByteIdentical) {
  Dataset dataset = grasp::testing::MakeFigure1Dataset();
  KeywordSearchEngine cold(dataset.store, dataset.dictionary);
  std::unique_ptr<KeywordSearchEngine> warm = Reopen(cold, "fig1_scoped");
  ASSERT_NE(warm, nullptr);

  std::vector<KeywordSearchEngine::KeywordQuery> queries;
  for (const auto& [keywords, scope] :
       std::vector<std::pair<std::vector<std::string>,
                             std::vector<std::string>>>{
           {{"2006", "cimiano", "aifb"}, {"name", "author", "year", "worksAt"}},
           {{"2006", "cimiano", "aifb"}, {"name", "author", "year"}},
           {{"publication", "project"}, {"hasProject", "name"}},
           {{"cimiano", "aifb"}, {"name"}},
           {{"2006", "cimiano"}, {"no-such-predicate"}}}) {
    KeywordSearchEngine::KeywordQuery q;
    q.keywords = keywords;
    q.k = 5;
    q.predicate_scope = scope;
    queries.push_back(std::move(q));
  }
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ExpectSameResult(cold.Search(queries[i]), warm->Search(queries[i]),
                       StrFormat("scoped round %d query %zu", round, i));
    }
  }
}

TEST(SnapshotWarmStartTest, SearchBatchConcurrencyMatchesColdSerial) {
  Dataset dataset;
  datagen::LubmOptions options;
  options.num_universities = 1;
  datagen::GenerateLubm(options, &dataset.dictionary, &dataset.store);
  dataset.store.Finalize();
  KeywordSearchEngine cold(dataset.store, dataset.dictionary);
  std::unique_ptr<KeywordSearchEngine> warm = Reopen(cold, "batch");
  ASSERT_NE(warm, nullptr);

  std::vector<KeywordSearchEngine::KeywordQuery> queries;
  const std::vector<std::vector<std::string>> sets = {
      {"publication", "professor"}, {"course", "student"},
      {"department"},               {"name", "university"},
      {"publication", "professor"},  // repeats exercise the cache
      {"student"},                  {"course", "name"},
  };
  for (int round = 0; round < 3; ++round) {
    for (const auto& s : sets) queries.push_back({s, 4});
  }
  const auto warm_results =
      warm->SearchBatch(std::span<const KeywordSearchEngine::KeywordQuery>(
                            queries.data(), queries.size()),
                        4);
  ASSERT_EQ(warm_results.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto cold_result = cold.Search(queries[i].keywords, queries[i].k);
    ExpectSameResult(cold_result, warm_results[i],
                     StrFormat("batch query %zu", i));
  }
}

TEST(SnapshotWarmStartTest, IndexStatsAccountMappedBytesSeparately) {
  Dataset dataset = grasp::testing::MakeFigure1Dataset();
  KeywordSearchEngine cold(dataset.store, dataset.dictionary);
  EXPECT_EQ(cold.index_stats().mapped_snapshot_bytes, 0u);

  std::unique_ptr<KeywordSearchEngine> warm = Reopen(cold, "stats");
  ASSERT_NE(warm, nullptr);
  const auto cold_stats = cold.index_stats();
  const auto warm_stats = warm->index_stats();
  // The mapping carries the flat arrays, so the warm engine's owned index
  // bytes must be strictly smaller than the cold engine's while the mapped
  // figure covers the difference.
  EXPECT_GT(warm_stats.mapped_snapshot_bytes, 0u);
  EXPECT_LT(warm_stats.keyword_index_bytes, cold_stats.keyword_index_bytes);
  EXPECT_LT(warm_stats.summary_graph_bytes, cold_stats.summary_graph_bytes);
  // Static index figures survive the round trip.
  EXPECT_EQ(warm_stats.summary_nodes, cold_stats.summary_nodes);
  EXPECT_EQ(warm_stats.summary_edges, cold_stats.summary_edges);
  EXPECT_EQ(warm_stats.keyword_elements, cold_stats.keyword_elements);
}

TEST(SnapshotWarmStartTest, AnswersWorkOnWarmEngine) {
  // The warm store supports full query evaluation (Find, scans, FILTER).
  Dataset dataset = grasp::testing::MakeFigure1Dataset();
  KeywordSearchEngine cold(dataset.store, dataset.dictionary);
  std::unique_ptr<KeywordSearchEngine> warm = Reopen(cold, "answers");
  ASSERT_NE(warm, nullptr);
  const auto cold_result = cold.Search({"2006", "cimiano"}, 1);
  const auto warm_result = warm->Search({"2006", "cimiano"}, 1);
  ASSERT_FALSE(cold_result.queries.empty());
  ASSERT_FALSE(warm_result.queries.empty());
  const auto cold_answers = cold.Answers(cold_result.queries[0].query);
  const auto warm_answers = warm->Answers(warm_result.queries[0].query);
  ASSERT_TRUE(cold_answers.ok());
  ASSERT_TRUE(warm_answers.ok());
  ASSERT_EQ(cold_answers->rows.size(), warm_answers->rows.size());
  for (std::size_t i = 0; i < cold_answers->rows.size(); ++i) {
    EXPECT_EQ(cold_answers->rows[i], warm_answers->rows[i]);
  }
}

}  // namespace
}  // namespace grasp::core
