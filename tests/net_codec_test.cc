// HTTP codec tests: the checked-in malformed-request corpus replayed
// against the incremental parser (expected verdict encoded in the
// filename: ok_* must parse, bad_NNN_* must fail with status NNN), an
// incrementality property (any byte-fragmentation of an input yields the
// same verdict and the same parsed request), and the allocation bound (a
// hostile flood never makes the parser buffer past its limits). The CI
// sanitizer legs run this suite under ASan/UBSan: every corpus reject must
// be a clean 400/413/501/505, never a crash or an overflow.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "net/http.h"

#ifndef GRASP_TEST_CORPUS_DIR
#define GRASP_TEST_CORPUS_DIR "tests/corpus"
#endif

namespace grasp::net {
namespace {

struct CorpusCase {
  std::string name;   // filename stem
  std::string bytes;  // raw request bytes
  bool expect_ok = false;
  int expect_status = 0;  // for bad_* cases
};

std::vector<CorpusCase> LoadHttpCorpus() {
  const std::filesystem::path dir =
      std::filesystem::path(GRASP_TEST_CORPUS_DIR) / "http";
  std::vector<CorpusCase> cases;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".raw") continue;
    CorpusCase c;
    c.name = entry.path().stem().string();
    std::ifstream in(entry.path(), std::ios::binary);
    c.bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    if (c.name.rfind("ok_", 0) == 0) {
      c.expect_ok = true;
    } else if (c.name.rfind("bad_", 0) == 0) {
      c.expect_status = std::atoi(c.name.c_str() + 4);
    } else {
      ADD_FAILURE() << "corpus file " << c.name
                    << " matches neither ok_* nor bad_NNN_*";
      continue;
    }
    cases.push_back(std::move(c));
  }
  // A missing or empty corpus must fail loudly — a silently skipped corpus
  // would look exactly like a passing one.
  EXPECT_GE(cases.size(), 20u) << "http corpus missing or gutted at " << dir;
  return cases;
}

/// Feeds `bytes` in `chunk`-sized pieces, asserting the buffering bound
/// after every piece. Returns the parser for final-state inspection.
RequestParser FeedChunked(const std::string& bytes, std::size_t chunk,
                          const ParseLimits& limits) {
  RequestParser parser(limits);
  std::size_t off = 0;
  while (off < bytes.size() && !parser.done() && !parser.error()) {
    const std::size_t n = std::min(chunk, bytes.size() - off);
    const std::size_t used =
        parser.Feed(std::string_view(bytes.data() + off, n));
    EXPECT_LE(parser.buffered_bytes(),
              limits.max_head_bytes + limits.max_body_bytes);
    if (used == 0 && !parser.done() && !parser.error()) {
      // No progress and no verdict would loop forever; the parser never
      // does this on any input (it always consumes or decides).
      ADD_FAILURE() << "parser stalled at offset " << off;
      break;
    }
    off += used;
  }
  return parser;
}

TEST(NetCodecCorpusTest, VerdictsMatchFilenames) {
  for (const CorpusCase& c : LoadHttpCorpus()) {
    SCOPED_TRACE(c.name);
    RequestParser parser = FeedChunked(c.bytes, c.bytes.size(), ParseLimits{});
    if (c.expect_ok) {
      EXPECT_TRUE(parser.done()) << parser.error_reason();
      EXPECT_FALSE(parser.error());
    } else {
      EXPECT_TRUE(parser.error());
      EXPECT_EQ(parser.error_status(), c.expect_status)
          << parser.error_reason();
      EXPECT_FALSE(parser.error_reason().empty());
    }
  }
}

TEST(NetCodecCorpusTest, VerdictIsFragmentationInvariant) {
  // Any split of the same bytes — one byte at a time, odd primes, whole —
  // must produce the same verdict, status, and parsed request. This is the
  // property that makes the epoll server's arbitrary read boundaries safe.
  for (const CorpusCase& c : LoadHttpCorpus()) {
    SCOPED_TRACE(c.name);
    RequestParser whole = FeedChunked(c.bytes, c.bytes.size(), ParseLimits{});
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                    std::size_t{7}, std::size_t{64}}) {
      RequestParser split = FeedChunked(c.bytes, chunk, ParseLimits{});
      EXPECT_EQ(split.done(), whole.done()) << "chunk=" << chunk;
      EXPECT_EQ(split.error(), whole.error()) << "chunk=" << chunk;
      EXPECT_EQ(split.error_status(), whole.error_status())
          << "chunk=" << chunk;
      if (whole.done()) {
        EXPECT_EQ(split.request().method, whole.request().method);
        EXPECT_EQ(split.request().target, whole.request().target);
        EXPECT_EQ(split.request().body, whole.request().body);
        EXPECT_EQ(split.request().keep_alive, whole.request().keep_alive);
        EXPECT_EQ(split.request().headers, whole.request().headers);
      }
    }
  }
}

TEST(NetCodecTest, ParsesKnownRequestsExactly) {
  RequestParser parser;
  const std::string_view post =
      "POST /search HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
  EXPECT_EQ(parser.Feed(post), post.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().target, "/search");
  EXPECT_EQ(parser.request().body, "hello world");
  EXPECT_TRUE(parser.request().keep_alive);

  parser.Reset();
  const std::string_view http10 = "GET / HTTP/1.0\r\n\r\n";
  parser.Feed(http10);
  ASSERT_TRUE(parser.done());
  EXPECT_FALSE(parser.request().keep_alive);  // 1.0 defaults to close

  parser.Reset();
  parser.Feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_FALSE(parser.request().keep_alive);

  parser.Reset();
  parser.Feed("GET / HTTP/1.1\r\nX-Padded:   v v   \r\n\r\n");
  ASSERT_TRUE(parser.done());
  const std::string* padded = parser.request().FindHeader("x-padded");
  ASSERT_NE(padded, nullptr);
  EXPECT_EQ(*padded, "v v");  // names lowercased, values trimmed
}

TEST(NetCodecTest, PipelinedRequestsConsumeExactly) {
  const std::string first = "GET /a HTTP/1.1\r\n\r\n";
  const std::string second = "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nxy";
  const std::string both = first + second;

  RequestParser parser;
  const std::size_t used = parser.Feed(both);
  EXPECT_EQ(used, first.size());  // not one byte of request 2 consumed
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/a");

  parser.Reset();
  EXPECT_FALSE(parser.started());
  const std::size_t used2 =
      parser.Feed(std::string_view(both).substr(used));
  EXPECT_EQ(used2, second.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/b");
  EXPECT_EQ(parser.request().body, "xy");
}

TEST(NetCodecTest, FloodNeverBuffersPastTheLimits) {
  ParseLimits limits;
  limits.max_head_bytes = 1024;
  limits.max_body_bytes = 256;
  RequestParser parser(limits);

  // A megabyte of never-terminating header bytes: the parser must reject
  // at the head limit and refuse further input without growing.
  const std::string flood(1 << 20, 'a');
  std::size_t total = 0;
  for (std::size_t off = 0; off < flood.size();) {
    const std::size_t used =
        parser.Feed(std::string_view(flood).substr(off, 512));
    total += used;
    ASSERT_LE(parser.buffered_bytes(),
              limits.max_head_bytes + limits.max_body_bytes);
    if (parser.error()) break;
    off += used;
  }
  EXPECT_TRUE(parser.error());
  EXPECT_EQ(parser.error_status(), 400);
  EXPECT_LE(total, limits.max_head_bytes + 512);
  // Post-verdict feeds are no-ops — a server that keeps reading by mistake
  // cannot be made to buffer.
  EXPECT_EQ(parser.Feed(flood), 0u);

  // An oversized declared body is rejected before any body byte buffers.
  parser.Reset();
  parser.Feed("POST / HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n");
  EXPECT_TRUE(parser.error());
  EXPECT_EQ(parser.error_status(), 413);
  EXPECT_LE(parser.buffered_bytes(), limits.max_head_bytes);
}

TEST(NetCodecTest, SerializeResponseEmitsFraming) {
  HttpResponse response;
  response.status = 429;
  response.headers.emplace_back("Retry-After", "2");
  response.body = "slow down";
  const std::string wire = SerializeResponse(response, /*keep_alive=*/true);
  EXPECT_EQ(wire.rfind("HTTP/1.1 429 Too Many Requests\r\n", 0), 0u);
  EXPECT_NE(wire.find("Retry-After: 2\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 9\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\nslow down"), std::string::npos);

  const std::string closing = SerializeResponse(response, /*keep_alive=*/false);
  EXPECT_NE(closing.find("Connection: close\r\n"), std::string::npos);
}

TEST(NetCodecTest, ParseTargetDecodesQueryParameters) {
  const ParsedTarget t = ParseTarget("/search?q=graph%20query+rdf&k=5&scope=");
  EXPECT_EQ(t.path, "/search");
  const std::string* q = t.FindParam("q");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(*q, "graph query rdf");  // %20 and '+' both decode to space
  const std::string* k = t.FindParam("k");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(*k, "5");
  const std::string* scope = t.FindParam("scope");
  ASSERT_NE(scope, nullptr);
  EXPECT_TRUE(scope->empty());
  EXPECT_EQ(t.FindParam("missing"), nullptr);

  // Malformed escapes pass through literally instead of rejecting — the
  // query string carries keywords, not protocol structure.
  const ParsedTarget bad = ParseTarget("/p?x=%zz%2");
  const std::string* x = bad.FindParam("x");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(*x, "%zz%2");

  const ParsedTarget bare = ParseTarget("/healthz");
  EXPECT_EQ(bare.path, "/healthz");
  EXPECT_TRUE(bare.params.empty());
}

TEST(NetCodecTest, JsonEscapingCoversControlBytes) {
  std::string out;
  AppendJsonEscaped(&out, "a\"b\\c\n\t\x01z");
  EXPECT_EQ(out, "a\\\"b\\\\c\\n\\t\\u0001z");
}

}  // namespace
}  // namespace grasp::net
