#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <tuple>

#include "rdf/data_graph.h"
#include "rdf/dictionary.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "test_util.h"

namespace grasp::rdf {
namespace {

// ----------------------------------------------------------------- Term --

TEST(TermTest, LocalNameAfterHash) {
  EXPECT_EQ(IriLocalName("http://ex.org/onto#Person"), "Person");
}

TEST(TermTest, LocalNameAfterSlash) {
  EXPECT_EQ(IriLocalName("http://ex.org/Person"), "Person");
}

TEST(TermTest, LocalNameHashWinsOverSlash) {
  EXPECT_EQ(IriLocalName("http://ex.org/a/b#works_at"), "works_at");
}

TEST(TermTest, LocalNameNoSeparators) {
  EXPECT_EQ(IriLocalName("Person"), "Person");
}

TEST(TermTest, LocalNameTrailingSeparator) {
  // Trailing '/' yields no usable suffix; fall back to the whole IRI.
  EXPECT_EQ(IriLocalName("http://ex.org/"), "http://ex.org/");
}

// ----------------------------------------------------------- Dictionary --

TEST(DictionaryTest, InterningIsIdempotent) {
  Dictionary d;
  TermId a = d.InternIri("http://x/a");
  TermId b = d.InternIri("http://x/a");
  EXPECT_EQ(a, b);
  EXPECT_EQ(d.size(), 1u);
}

TEST(DictionaryTest, KindDistinguishesIriFromLiteral) {
  Dictionary d;
  TermId iri = d.InternIri("same");
  TermId lit = d.InternLiteral("same");
  EXPECT_NE(iri, lit);
  EXPECT_EQ(d.kind(iri), TermKind::kIri);
  EXPECT_EQ(d.kind(lit), TermKind::kLiteral);
}

TEST(DictionaryTest, FindReturnsInvalidForUnknown) {
  Dictionary d;
  EXPECT_EQ(d.Find(TermKind::kIri, "nope"), kInvalidTermId);
}

TEST(DictionaryTest, RoundTripText) {
  Dictionary d;
  TermId id = d.InternLiteral("Philipp Cimiano");
  EXPECT_EQ(d.text(id), "Philipp Cimiano");
  EXPECT_EQ(d.Find(TermKind::kLiteral, "Philipp Cimiano"), id);
}

TEST(DictionaryTest, IdsAreDense) {
  Dictionary d;
  EXPECT_EQ(d.InternIri("a"), 0u);
  EXPECT_EQ(d.InternIri("b"), 1u);
  EXPECT_EQ(d.InternLiteral("c"), 2u);
}

TEST(DictionaryTest, MemoryUsageGrows) {
  Dictionary d;
  std::size_t before = d.MemoryUsageBytes();
  for (int i = 0; i < 100; ++i) d.InternIri(StrFormat("http://x/entity%d", i));
  EXPECT_GT(d.MemoryUsageBytes(), before);
}

// ---------------------------------------------------------- TripleStore --

class TripleStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s_ = d_.InternIri("s");
    p_ = d_.InternIri("p");
    o_ = d_.InternIri("o");
    s2_ = d_.InternIri("s2");
    p2_ = d_.InternIri("p2");
    o2_ = d_.InternIri("o2");
    store_.Add(s_, p_, o_);
    store_.Add(s_, p_, o2_);
    store_.Add(s_, p2_, o_);
    store_.Add(s2_, p_, o_);
    store_.Add(s2_, p2_, o2_);
    store_.Add(s_, p_, o_);  // duplicate, removed by Finalize
    store_.Finalize();
  }

  Dictionary d_;
  TripleStore store_;
  TermId s_, p_, o_, s2_, p2_, o2_;
};

TEST_F(TripleStoreTest, FinalizeDeduplicates) { EXPECT_EQ(store_.size(), 5u); }

TEST_F(TripleStoreTest, CountFullWildcard) {
  EXPECT_EQ(store_.Count({}), 5u);
}

TEST_F(TripleStoreTest, CountBySubject) {
  EXPECT_EQ(store_.Count({s_, kInvalidTermId, kInvalidTermId}), 3u);
  EXPECT_EQ(store_.Count({s2_, kInvalidTermId, kInvalidTermId}), 2u);
}

TEST_F(TripleStoreTest, CountByPredicate) {
  EXPECT_EQ(store_.Count({kInvalidTermId, p_, kInvalidTermId}), 3u);
  EXPECT_EQ(store_.PredicateCardinality(p2_), 2u);
}

TEST_F(TripleStoreTest, CountByObject) {
  EXPECT_EQ(store_.Count({kInvalidTermId, kInvalidTermId, o_}), 3u);
}

TEST_F(TripleStoreTest, CountSubjectObject) {
  EXPECT_EQ(store_.Count({s_, kInvalidTermId, o_}), 2u);
}

TEST_F(TripleStoreTest, CountSubjectPredicate) {
  EXPECT_EQ(store_.Count({s_, p_, kInvalidTermId}), 2u);
}

TEST_F(TripleStoreTest, CountPredicateObject) {
  EXPECT_EQ(store_.Count({kInvalidTermId, p_, o_}), 2u);
}

TEST_F(TripleStoreTest, CountExactTriple) {
  EXPECT_EQ(store_.Count({s_, p_, o_}), 1u);
  EXPECT_EQ(store_.Count({s2_, p2_, o_}), 0u);
}

TEST_F(TripleStoreTest, ContainsExact) {
  EXPECT_TRUE(store_.Contains({s_, p_, o_}));
  EXPECT_FALSE(store_.Contains({o_, p_, s_}));
}

TEST_F(TripleStoreTest, ScanVisitsMatchesOnly) {
  std::set<std::tuple<TermId, TermId, TermId>> seen;
  store_.Scan({s_, kInvalidTermId, kInvalidTermId}, [&](const Triple& t) {
    EXPECT_EQ(t.subject, s_);
    seen.insert({t.subject, t.predicate, t.object});
    return true;
  });
  EXPECT_EQ(seen.size(), 3u);
}

TEST_F(TripleStoreTest, ScanEarlyExit) {
  int visits = 0;
  store_.Scan({}, [&](const Triple&) {
    ++visits;
    return visits < 2;
  });
  EXPECT_EQ(visits, 2);
}

TEST_F(TripleStoreTest, MemoryUsageNonZero) {
  EXPECT_GT(store_.MemoryUsageBytes(), 0u);
}

/// Property sweep: every pattern shape returns exactly the brute-force
/// filtered set, on randomized stores.
class TripleStorePatternTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TripleStorePatternTest, AllPatternShapesMatchBruteForce) {
  Rng rng(GetParam());
  Dictionary d;
  TripleStore store;
  std::vector<Triple> reference;
  const int terms = 12;
  for (int i = 0; i < terms; ++i) d.InternIri(StrFormat("t%d", i));
  for (int i = 0; i < 120; ++i) {
    Triple t{static_cast<TermId>(rng.NextBelow(terms)),
             static_cast<TermId>(rng.NextBelow(terms)),
             static_cast<TermId>(rng.NextBelow(terms))};
    store.Add(t);
    reference.push_back(t);
  }
  store.Finalize();
  std::sort(reference.begin(), reference.end());
  reference.erase(std::unique(reference.begin(), reference.end()),
                  reference.end());

  for (int mask = 0; mask < 8; ++mask) {
    TripleStore::Pattern pattern;
    const TermId sv = static_cast<TermId>(rng.NextBelow(terms));
    const TermId pv = static_cast<TermId>(rng.NextBelow(terms));
    const TermId ov = static_cast<TermId>(rng.NextBelow(terms));
    if (mask & 1) pattern.subject = sv;
    if (mask & 2) pattern.predicate = pv;
    if (mask & 4) pattern.object = ov;

    std::set<std::tuple<TermId, TermId, TermId>> expected;
    for (const Triple& t : reference) {
      if ((mask & 1) && t.subject != sv) continue;
      if ((mask & 2) && t.predicate != pv) continue;
      if ((mask & 4) && t.object != ov) continue;
      expected.insert({t.subject, t.predicate, t.object});
    }
    std::set<std::tuple<TermId, TermId, TermId>> actual;
    store.Scan(pattern, [&](const Triple& t) {
      actual.insert({t.subject, t.predicate, t.object});
      return true;
    });
    EXPECT_EQ(actual, expected) << "mask=" << mask;
    EXPECT_EQ(store.Count(pattern), expected.size()) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomStores, TripleStorePatternTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// -------------------------------------------------------------- NTriples --

TEST(NTriplesTest, ParsesIriTriple) {
  Dictionary d;
  TripleStore store;
  ASSERT_TRUE(
      ParseNTriplesString("<http://a> <http://b> <http://c> .", &d, &store)
          .ok());
  store.Finalize();
  EXPECT_EQ(store.size(), 1u);
}

TEST(NTriplesTest, ParsesLiteralWithEscapes) {
  Dictionary d;
  TripleStore store;
  ASSERT_TRUE(ParseNTriplesString(
                  R"(<http://a> <http://b> "line\n\"quoted\"\t\\" .)", &d,
                  &store)
                  .ok());
  store.Finalize();
  const Triple& t = store.triples()[0];
  EXPECT_EQ(d.text(t.object), "line\n\"quoted\"\t\\");
}

TEST(NTriplesTest, ParsesUnicodeEscape) {
  Dictionary d;
  TripleStore store;
  ASSERT_TRUE(ParseNTriplesString(R"(<a> <b> "café" .)", &d, &store).ok());
  store.Finalize();
  EXPECT_EQ(d.text(store.triples()[0].object), "caf\xc3\xa9");
}

TEST(NTriplesTest, DropsLanguageTagAndDatatype) {
  Dictionary d;
  TripleStore store;
  ASSERT_TRUE(ParseNTriplesString(
                  "<a> <b> \"x\"@en .\n<a> <c> \"5\"^^<http://int> .", &d,
                  &store)
                  .ok());
  store.Finalize();
  EXPECT_EQ(store.size(), 2u);
  EXPECT_NE(d.Find(TermKind::kLiteral, "x"), kInvalidTermId);
  EXPECT_NE(d.Find(TermKind::kLiteral, "5"), kInvalidTermId);
}

TEST(NTriplesTest, ParsesBlankNodes) {
  Dictionary d;
  TripleStore store;
  ASSERT_TRUE(ParseNTriplesString("_:b1 <p> _:b2 .", &d, &store).ok());
  store.Finalize();
  EXPECT_EQ(d.text(store.triples()[0].subject), "_:b1");
}

TEST(NTriplesTest, SkipsCommentsAndBlankLines) {
  Dictionary d;
  TripleStore store;
  ASSERT_TRUE(ParseNTriplesString("# comment\n\n<a> <b> <c> . # trailing\n",
                                  &d, &store)
                  .ok());
  store.Finalize();
  EXPECT_EQ(store.size(), 1u);
}

struct BadInputCase {
  const char* name;
  const char* input;
};

class NTriplesErrorTest : public ::testing::TestWithParam<BadInputCase> {};

TEST_P(NTriplesErrorTest, RejectsMalformedInput) {
  Dictionary d;
  TripleStore store;
  Status s = ParseNTriplesString(GetParam().input, &d, &store);
  EXPECT_FALSE(s.ok()) << GetParam().name;
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, NTriplesErrorTest,
    ::testing::Values(
        BadInputCase{"missing_dot", "<a> <b> <c>"},
        BadInputCase{"unterminated_iri", "<a> <b> <c .\n"},
        BadInputCase{"unterminated_literal", "<a> <b> \"oops ."},
        BadInputCase{"dangling_escape", "<a> <b> \"x\\"},
        BadInputCase{"bad_unicode", R"(<a> <b> "\uZZZZ" .)"},
        BadInputCase{"missing_object", "<a> <b> ."},
        BadInputCase{"empty_iri", "<> <b> <c> ."},
        BadInputCase{"trailing_garbage", "<a> <b> <c> . junk"},
        BadInputCase{"unknown_escape", R"(<a> <b> "\q" .)"},
        BadInputCase{"empty_blank_label", "_: <b> <c> ."}),
    [](const ::testing::TestParamInfo<BadInputCase>& info) {
      return info.param.name;
    });

TEST(NTriplesTest, WriterRoundTrips) {
  Dictionary d;
  TripleStore store;
  const char* input =
      "<http://a> <http://p> \"va\\\"l\\nue\" .\n"
      "<http://a> <http://q> <http://b> .\n"
      "_:x <http://p> \"2006\" .\n";
  ASSERT_TRUE(ParseNTriplesString(input, &d, &store).ok());
  store.Finalize();

  std::ostringstream out;
  WriteNTriples(store, d, &out);

  Dictionary d2;
  TripleStore store2;
  ASSERT_TRUE(ParseNTriplesString(out.str(), &d2, &store2).ok());
  store2.Finalize();
  ASSERT_EQ(store2.size(), store.size());
  // Compare as (kind, text) tuples since ids may differ.
  for (std::size_t i = 0; i < store.size(); ++i) {
    const Triple& a = store.triples()[i];
    const Triple& b = store2.triples()[i];
    EXPECT_EQ(d.text(a.subject), d2.text(b.subject));
    EXPECT_EQ(d.text(a.predicate), d2.text(b.predicate));
    EXPECT_EQ(d.text(a.object), d2.text(b.object));
    EXPECT_EQ(d.kind(a.object), d2.kind(b.object));
  }
}

TEST(NTriplesTest, EscapeLiteralCoversControls) {
  EXPECT_EQ(EscapeLiteral("a\"b\\c\nd\te\rf"), "a\\\"b\\\\c\\nd\\te\\rf");
}

TEST(NTriplesTest, FileNotFoundReportsIoError) {
  Dictionary d;
  TripleStore store;
  Status s = ParseNTriplesFile("/nonexistent/file.nt", &d, &store);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

// ------------------------------------------------------------- DataGraph --

class DataGraphTest : public ::testing::Test {
 protected:
  DataGraphTest() : dataset_(grasp::testing::MakeFigure1Dataset()) {}

  testing::Dataset dataset_;
};

TEST_F(DataGraphTest, ClassifiesVertexKinds) {
  DataGraph g = DataGraph::Build(dataset_.store, dataset_.dictionary);
  // Classes: Project, Publication, Researcher, Institute, Agent, Person,
  // Thing (as subclass object).
  EXPECT_EQ(g.NumClasses(), 7u);
  // Entities: pro1 pro2 pub1 pub2 re1 re2 inst1 inst2.
  EXPECT_EQ(g.NumEntities(), 8u);
  // Values: X-Media, 2006, Thanh_Tran, P._Cimiano, AIFB.
  EXPECT_EQ(g.NumValues(), 5u);
}

TEST_F(DataGraphTest, ClassifiesEdgeKinds) {
  DataGraph g = DataGraph::Build(dataset_.store, dataset_.dictionary);
  std::size_t rel = 0, attr = 0, type = 0, subclass = 0;
  for (const Edge& e : g.edges()) {
    switch (e.kind) {
      case EdgeKind::kRelation: ++rel; break;
      case EdgeKind::kAttribute: ++attr; break;
      case EdgeKind::kType: ++type; break;
      case EdgeKind::kSubclass: ++subclass; break;
    }
  }
  EXPECT_EQ(rel, 5u);       // author x2, worksAt x2, hasProject
  EXPECT_EQ(attr, 5u);      // name x4, year
  EXPECT_EQ(type, 8u);      // one per entity
  EXPECT_EQ(subclass, 4u);  // Institute, Researcher, Person, Agent
}

TEST_F(DataGraphTest, ClassesOfEntity) {
  DataGraph g = DataGraph::Build(dataset_.store, dataset_.dictionary);
  const TermId re1 = dataset_.dictionary.Find(
      TermKind::kIri, std::string(grasp::testing::kEx) + "re1");
  ASSERT_NE(re1, kInvalidTermId);
  const VertexId v = g.VertexOf(re1);
  ASSERT_NE(v, kInvalidVertexId);
  auto classes = g.ClassesOf(v);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(IriLocalName(g.VertexText(classes[0])), "Researcher");
}

TEST_F(DataGraphTest, AdjacencyIsConsistent) {
  DataGraph g = DataGraph::Build(dataset_.store, dataset_.dictionary);
  std::size_t out_total = 0, in_total = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    out_total += g.OutEdges(v).size();
    in_total += g.InEdges(v).size();
    for (EdgeId e : g.OutEdges(v)) EXPECT_EQ(g.edge(e).from, v);
    for (EdgeId e : g.InEdges(v)) EXPECT_EQ(g.edge(e).to, v);
  }
  EXPECT_EQ(out_total, g.NumEdges());
  EXPECT_EQ(in_total, g.NumEdges());
}

TEST_F(DataGraphTest, VertexOfUnknownTermIsInvalid) {
  DataGraph g = DataGraph::Build(dataset_.store, dataset_.dictionary);
  Dictionary& dict = dataset_.dictionary;
  const TermId unknown = dict.InternIri("http://nowhere/else");
  EXPECT_EQ(g.VertexOf(unknown), kInvalidVertexId);
}

TEST(DataGraphEdgeCasesTest, TypeWithLiteralObjectBecomesAttribute) {
  auto dataset = grasp::testing::MakeDataset({R"(e1 a "oops")"});
  DataGraph g = DataGraph::Build(dataset.store, dataset.dictionary);
  ASSERT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.edges()[0].kind, EdgeKind::kAttribute);
  EXPECT_EQ(g.NumClasses(), 0u);
}

TEST(DataGraphEdgeCasesTest, UntypedEntitiesAreEntities) {
  auto dataset = grasp::testing::MakeDataset({R"(e1 knows e2)"});
  DataGraph g = DataGraph::Build(dataset.store, dataset.dictionary);
  EXPECT_EQ(g.NumEntities(), 2u);
  EXPECT_EQ(g.NumClasses(), 0u);
  ASSERT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.edges()[0].kind, EdgeKind::kRelation);
}

TEST(DataGraphEdgeCasesTest, SharedLiteralValueIsOneVertex) {
  auto dataset = grasp::testing::MakeDataset({
      R"(e1 year "2006")",
      R"(e2 year "2006")",
  });
  DataGraph g = DataGraph::Build(dataset.store, dataset.dictionary);
  EXPECT_EQ(g.NumValues(), 1u);
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(DataGraphEdgeCasesTest, ClassUsedAsRelationTarget) {
  auto dataset = grasp::testing::MakeDataset({
      R"(e1 a C)",
      R"(e1 likes C)",
  });
  DataGraph g = DataGraph::Build(dataset.store, dataset.dictionary);
  // `likes` points at a class vertex; it is still an R-edge.
  std::size_t rel = 0;
  for (const Edge& e : g.edges()) {
    if (e.kind == EdgeKind::kRelation) ++rel;
  }
  EXPECT_EQ(rel, 1u);
  EXPECT_EQ(g.NumClasses(), 1u);
}

}  // namespace
}  // namespace grasp::rdf
