#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/engine.h"
#include "query/verbalizer.h"
#include "test_util.h"

namespace grasp::query {
namespace {

class VerbalizerTest : public ::testing::Test {
 protected:
  VerbalizerTest() : dataset_(grasp::testing::MakeFigure1Dataset()) {}

  rdf::TermId Iri(const std::string& local) {
    return dataset_.dictionary.InternIri(std::string(grasp::testing::kEx) +
                                         local);
  }
  rdf::TermId Lit(const std::string& text) {
    return dataset_.dictionary.InternLiteral(text);
  }
  rdf::TermId Type() {
    return dataset_.dictionary.InternIri(
        "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  }

  grasp::testing::Dataset dataset_;
};

TEST_F(VerbalizerTest, SingleClassQuery) {
  ConjunctiveQuery q;
  q.AddAtom({Type(), QueryTerm::Variable(q.NewVariable()),
             QueryTerm::Constant(Iri("Publication"))});
  EXPECT_EQ(Verbalize(q, dataset_.dictionary), "Find every publication.");
}

TEST_F(VerbalizerTest, AttributeClause) {
  ConjunctiveQuery q;
  const VarId x = q.NewVariable();
  q.AddAtom({Type(), QueryTerm::Variable(x),
             QueryTerm::Constant(Iri("Publication"))});
  q.AddAtom({Iri("year"), QueryTerm::Variable(x),
             QueryTerm::Constant(Lit("2006"))});
  EXPECT_EQ(Verbalize(q, dataset_.dictionary),
            "Find every publication whose year is '2006'.");
}

TEST_F(VerbalizerTest, RelationChainsIntoNestedPhrase) {
  ConjunctiveQuery q;
  const VarId x = q.NewVariable(), y = q.NewVariable();
  q.AddAtom({Type(), QueryTerm::Variable(x),
             QueryTerm::Constant(Iri("Publication"))});
  q.AddAtom({Iri("author"), QueryTerm::Variable(x), QueryTerm::Variable(y)});
  q.AddAtom({Type(), QueryTerm::Variable(y),
             QueryTerm::Constant(Iri("Researcher"))});
  q.AddAtom({Iri("name"), QueryTerm::Variable(y),
             QueryTerm::Constant(Lit("P. Cimiano"))});
  EXPECT_EQ(Verbalize(q, dataset_.dictionary),
            "Find every publication with author some researcher whose name "
            "is 'P. Cimiano'.");
}

TEST_F(VerbalizerTest, CamelCasePredicateHumanized) {
  ConjunctiveQuery q;
  const VarId x = q.NewVariable(), y = q.NewVariable();
  q.AddAtom({Iri("worksAt"), QueryTerm::Variable(x), QueryTerm::Variable(y)});
  const std::string text = Verbalize(q, dataset_.dictionary);
  EXPECT_NE(text.find("works at"), std::string::npos) << text;
}

TEST_F(VerbalizerTest, FilterClause) {
  ConjunctiveQuery q;
  const VarId x = q.NewVariable(), v = q.NewVariable();
  q.AddAtom({Iri("year"), QueryTerm::Variable(x), QueryTerm::Variable(v)});
  q.AddFilter(FilterCondition{v, FilterOp::kGreater, 2000});
  const std::string text = Verbalize(q, dataset_.dictionary);
  EXPECT_NE(text.find("> 2000"), std::string::npos) << text;
}

TEST_F(VerbalizerTest, UntypedVariableIsThing) {
  ConjunctiveQuery q;
  q.AddAtom({Iri("name"), QueryTerm::Variable(q.NewVariable()),
             QueryTerm::Constant(Lit("AIFB"))});
  EXPECT_EQ(Verbalize(q, dataset_.dictionary),
            "Find every thing whose name is 'AIFB'.");
}

TEST_F(VerbalizerTest, GroundAtomRendered) {
  ConjunctiveQuery q;
  q.AddAtom({dataset_.dictionary.InternIri(
                 "http://www.w3.org/2000/01/rdf-schema#subClassOf"),
             QueryTerm::Constant(Iri("Researcher")),
             QueryTerm::Constant(Iri("Person"))});
  const std::string text = Verbalize(q, dataset_.dictionary);
  EXPECT_NE(text.find("Researcher"), std::string::npos) << text;
  EXPECT_NE(text.find("Person"), std::string::npos) << text;
}

TEST_F(VerbalizerTest, CyclicQueryTerminates) {
  ConjunctiveQuery q;
  const VarId x = q.NewVariable(), y = q.NewVariable();
  q.AddAtom({Iri("cites"), QueryTerm::Variable(x), QueryTerm::Variable(y)});
  q.AddAtom({Iri("cites"), QueryTerm::Variable(y), QueryTerm::Variable(x)});
  const std::string text = Verbalize(q, dataset_.dictionary);
  EXPECT_FALSE(text.empty());
  EXPECT_NE(text.find("cites"), std::string::npos) << text;
}

TEST_F(VerbalizerTest, DistinctQueriesDistinctQuestions) {
  // The verbalization must not collapse different interpretations.
  core::KeywordSearchEngine engine(dataset_.store, dataset_.dictionary);
  auto result = engine.Search({"name", "publication"}, 8);
  ASSERT_GE(result.queries.size(), 3u);
  std::set<std::string> questions;
  for (const auto& rq : result.queries) {
    questions.insert(Verbalize(rq.query, dataset_.dictionary));
  }
  EXPECT_EQ(questions.size(), result.queries.size());
}

}  // namespace
}  // namespace grasp::query
