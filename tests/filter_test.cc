// Tests for the filter-operator extension (Sec. IX future work): operator
// keywords such as ">2000" flow keyword parsing -> keyword index range scan
// -> augmentation -> query mapping -> FILTER evaluation -> SPARQL text.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/filter_op.h"
#include "core/engine.h"
#include "keyword/keyword_index.h"
#include "query/conjunctive_query.h"
#include "query/evaluator.h"
#include "query/sparql_parser.h"
#include "rdf/data_graph.h"
#include "test_util.h"

namespace grasp {
namespace {

// ------------------------------------------------------- keyword parsing --

TEST(ParseFilterKeywordTest, RecognizesOperators) {
  auto gt = ParseFilterKeyword(">2000");
  ASSERT_TRUE(gt.has_value());
  EXPECT_EQ(gt->op, FilterOp::kGreater);
  EXPECT_DOUBLE_EQ(gt->value, 2000.0);

  auto ge = ParseFilterKeyword(">=10");
  ASSERT_TRUE(ge.has_value());
  EXPECT_EQ(ge->op, FilterOp::kGreaterEqual);

  auto lt = ParseFilterKeyword("<1995.5");
  ASSERT_TRUE(lt.has_value());
  EXPECT_EQ(lt->op, FilterOp::kLess);
  EXPECT_DOUBLE_EQ(lt->value, 1995.5);

  auto le = ParseFilterKeyword("<= 0");
  ASSERT_TRUE(le.has_value());
  EXPECT_EQ(le->op, FilterOp::kLessEqual);

  auto ne = ParseFilterKeyword("!=3");
  ASSERT_TRUE(ne.has_value());
  EXPECT_EQ(ne->op, FilterOp::kNotEqual);
}

TEST(ParseFilterKeywordTest, RejectsPlainKeywords) {
  EXPECT_FALSE(ParseFilterKeyword("2000").has_value());
  EXPECT_FALSE(ParseFilterKeyword("cimiano").has_value());
  EXPECT_FALSE(ParseFilterKeyword(">").has_value());
  EXPECT_FALSE(ParseFilterKeyword(">abc").has_value());
  EXPECT_FALSE(ParseFilterKeyword(">2000x").has_value());
  EXPECT_FALSE(ParseFilterKeyword("").has_value());
}

TEST(FilterOpTest, EvalSemantics) {
  EXPECT_TRUE(EvalFilterOp(FilterOp::kLess, 1.0, 2.0));
  EXPECT_FALSE(EvalFilterOp(FilterOp::kLess, 2.0, 2.0));
  EXPECT_TRUE(EvalFilterOp(FilterOp::kLessEqual, 2.0, 2.0));
  EXPECT_TRUE(EvalFilterOp(FilterOp::kGreater, 3.0, 2.0));
  EXPECT_FALSE(EvalFilterOp(FilterOp::kGreater, 2.0, 2.0));
  EXPECT_TRUE(EvalFilterOp(FilterOp::kGreaterEqual, 2.0, 2.0));
  EXPECT_TRUE(EvalFilterOp(FilterOp::kNotEqual, 1.0, 2.0));
  EXPECT_FALSE(EvalFilterOp(FilterOp::kNotEqual, 2.0, 2.0));
}

// ------------------------------------------------------- index range scan --

class FilterIndexTest : public ::testing::Test {
 protected:
  FilterIndexTest()
      : dataset_(grasp::testing::MakeDataset({
            R"(p1 a Publication)", R"(p1 year "1998")",
            R"(p2 a Publication)", R"(p2 year "2002")",
            R"(p3 a Publication)", R"(p3 year "2006")",
            R"(p3 pages "12")",
            R"(r1 a Researcher)",  R"(r1 name "Ada")",
        })),
        graph_(rdf::DataGraph::Build(dataset_.store, dataset_.dictionary)),
        index_(keyword::KeywordIndex::Build(graph_)) {}

  grasp::testing::Dataset dataset_;
  rdf::DataGraph graph_;
  keyword::KeywordIndex index_;
};

TEST_F(FilterIndexTest, RangeMergesSatisfyingValues) {
  auto match = index_.LookupFilter(FilterSpec{FilterOp::kGreater, 2000.0});
  ASSERT_TRUE(match.has_value());
  EXPECT_TRUE(match->is_filter);
  EXPECT_EQ(match->score, 1.0);
  // years 2002 and 2006 satisfy; pages "12" does not. One merged context
  // for the `year` attribute with Publication, counts summed.
  ASSERT_EQ(match->contexts.size(), 1u);
  EXPECT_EQ(
      rdf::IriLocalName(dataset_.dictionary.text(match->contexts[0].attribute)),
      "year");
  ASSERT_EQ(match->contexts[0].counts.size(), 1u);
  EXPECT_EQ(match->contexts[0].counts[0], 2u);
}

TEST_F(FilterIndexTest, MultipleAttributesWhenBothMatch) {
  // > 10 catches years (1998, 2002, 2006) and pages (12).
  auto match = index_.LookupFilter(FilterSpec{FilterOp::kGreater, 10.0});
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->contexts.size(), 2u);
}

TEST_F(FilterIndexTest, EmptyRangeGivesNoMatch) {
  EXPECT_FALSE(
      index_.LookupFilter(FilterSpec{FilterOp::kGreater, 9999.0}).has_value());
  // Non-numeric values ("Ada") never participate.
  EXPECT_FALSE(
      index_.LookupFilter(FilterSpec{FilterOp::kLess, -1e18}).has_value());
}

// ------------------------------------------------------- query & evaluator --

class FilterQueryTest : public ::testing::Test {
 protected:
  FilterQueryTest() : dataset_(grasp::testing::MakeDataset({
                          R"(p1 a Publication)", R"(p1 year "1998")",
                          R"(p2 a Publication)", R"(p2 year "2002")",
                          R"(p3 a Publication)", R"(p3 year "2006")",
                      })) {}

  query::ConjunctiveQuery YearQuery(FilterOp op, double value) {
    query::ConjunctiveQuery q;
    const query::VarId x = q.NewVariable(), v = q.NewVariable();
    q.AddAtom({dataset_.dictionary.InternIri(std::string(grasp::testing::kEx) +
                                             "year"),
               query::QueryTerm::Variable(x), query::QueryTerm::Variable(v)});
    q.AddFilter(query::FilterCondition{v, op, value});
    return q;
  }

  grasp::testing::Dataset dataset_;
};

TEST_F(FilterQueryTest, EvaluatorAppliesFilter) {
  query::EvalOptions options;
  options.dictionary = &dataset_.dictionary;
  auto result = Evaluate(dataset_.store, YearQuery(FilterOp::kGreater, 2000),
                         options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);  // 2002 and 2006

  auto le = Evaluate(dataset_.store, YearQuery(FilterOp::kLessEqual, 1998),
                     options);
  ASSERT_TRUE(le.ok());
  EXPECT_EQ(le->rows.size(), 1u);

  auto ne = Evaluate(dataset_.store, YearQuery(FilterOp::kNotEqual, 2002),
                     options);
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(ne->rows.size(), 2u);
}

TEST_F(FilterQueryTest, FilterWithoutDictionaryIsRejected) {
  auto result =
      Evaluate(dataset_.store, YearQuery(FilterOp::kGreater, 2000), {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FilterQueryTest, SparqlRendersAndReparsesFilter) {
  query::ConjunctiveQuery q = YearQuery(FilterOp::kGreaterEqual, 2000);
  const std::string sparql = q.ToSparql(dataset_.dictionary);
  EXPECT_NE(sparql.find("FILTER(?x1 >= 2000)"), std::string::npos) << sparql;

  auto parsed = query::ParseSparql(sparql, &dataset_.dictionary);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << sparql;
  ASSERT_EQ(parsed->query.filters().size(), 1u);
  EXPECT_EQ(parsed->query.filters()[0].op, FilterOp::kGreaterEqual);
  EXPECT_DOUBLE_EQ(parsed->query.filters()[0].value, 2000.0);
  EXPECT_TRUE(Isomorphic(parsed->query, q)) << sparql;
}

TEST_F(FilterQueryTest, CanonicalDistinguishesFilters) {
  query::ConjunctiveQuery gt = YearQuery(FilterOp::kGreater, 2000);
  query::ConjunctiveQuery lt = YearQuery(FilterOp::kLess, 2000);
  query::ConjunctiveQuery gt2 = YearQuery(FilterOp::kGreater, 2001);
  EXPECT_FALSE(Isomorphic(gt, lt));
  EXPECT_FALSE(Isomorphic(gt, gt2));
  EXPECT_TRUE(Isomorphic(gt, YearQuery(FilterOp::kGreater, 2000)));
}

// --------------------------------------------------------------- end2end --

TEST(FilterEngineTest, OperatorKeywordProducesFilterQuery) {
  auto dataset = grasp::testing::MakeDataset({
      R"(p1 a Publication)", R"(p1 year "1998")", R"(p1 title "alpha")",
      R"(p2 a Publication)", R"(p2 year "2002")", R"(p2 title "beta")",
      R"(p3 a Publication)", R"(p3 year "2006")", R"(p3 title "gamma")",
      R"(p4 a Publication)", R"(p4 year "2007")", R"(p4 title "delta")",
  });
  core::KeywordSearchEngine engine(dataset.store, dataset.dictionary);
  auto result = engine.Search({"publication", ">2005"}, 3);
  ASSERT_FALSE(result.queries.empty());
  const auto& top = result.queries[0];
  ASSERT_EQ(top.query.filters().size(), 1u);
  EXPECT_EQ(top.query.filters()[0].op, FilterOp::kGreater);
  EXPECT_DOUBLE_EQ(top.query.filters()[0].value, 2005.0);

  auto answers = engine.Answers(top.query, 10);
  ASSERT_TRUE(answers.ok());
  std::set<std::string> bound;
  for (const auto& row : answers->rows) {
    for (rdf::TermId t : row) {
      bound.insert(std::string(dataset.dictionary.text(t)));
    }
  }
  // Exactly the publications after 2005.
  EXPECT_TRUE(bound.count(std::string(grasp::testing::kEx) + "p3") > 0);
  EXPECT_TRUE(bound.count(std::string(grasp::testing::kEx) + "p4") > 0);
  EXPECT_EQ(bound.count(std::string(grasp::testing::kEx) + "p1"), 0u);
  EXPECT_EQ(bound.count(std::string(grasp::testing::kEx) + "p2"), 0u);
}

TEST(FilterEngineTest, UnsatisfiableOperatorKeywordGivesNoQueries) {
  auto dataset = grasp::testing::MakeDataset({
      R"(p1 a Publication)", R"(p1 year "1998")",
  });
  core::KeywordSearchEngine engine(dataset.store, dataset.dictionary);
  EXPECT_TRUE(engine.Search({"publication", ">2050"}, 3).queries.empty());
}

}  // namespace
}  // namespace grasp
