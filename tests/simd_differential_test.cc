// Per-ISA differential suite: the engine must produce byte-identical
// results (ranked queries, costs, structure keys, counters) no matter which
// SIMD kernel tier the dispatcher installs. Each reachable tier gets its
// own engine — so index construction, mask building, keyword lookup and
// exploration all run under that tier — and is pinned against the scalar
// engine on the Fig. 1 running example, a LUBM slice, TAP-style data,
// seeded random datasets and the checked-in keyword corpus. Snapshots cross
// tiers too: an index saved under one tier is opened and queried under
// another.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "datagen/lubm_gen.h"
#include "datagen/tap_gen.h"
#include "simd/cpu.h"
#include "simd/kernels.h"
#include "test_util.h"

namespace grasp::core {
namespace {

using grasp::testing::Dataset;

std::vector<simd::Level> ReachableLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::TableFor(simd::Level::kSse42) != nullptr) {
    levels.push_back(simd::Level::kSse42);
  }
  if (simd::TableFor(simd::Level::kAvx2) != nullptr) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

/// Restores the dispatched tier no matter how the test exits.
class LevelGuard {
 public:
  LevelGuard() : original_(simd::ActiveLevel()) {}
  ~LevelGuard() { simd::SetActiveLevel(original_); }

 private:
  simd::Level original_;
};

void ExpectSameResult(const KeywordSearchEngine::SearchResult& expect,
                      const KeywordSearchEngine::SearchResult& got,
                      const std::string& context) {
  ASSERT_EQ(expect.queries.size(), got.queries.size()) << context;
  for (std::size_t i = 0; i < expect.queries.size(); ++i) {
    EXPECT_EQ(expect.queries[i].query.CanonicalString(),
              got.queries[i].query.CanonicalString())
        << context << " rank " << i;
    EXPECT_EQ(expect.queries[i].cost, got.queries[i].cost)
        << context << " rank " << i;
    EXPECT_EQ(expect.queries[i].subgraph.StructureKey(),
              got.queries[i].subgraph.StructureKey())
        << context << " rank " << i;
  }
  EXPECT_EQ(expect.matches_per_keyword, got.matches_per_keyword) << context;
  EXPECT_EQ(expect.exploration_stats.cursors_created,
            got.exploration_stats.cursors_created)
      << context;
  EXPECT_EQ(expect.exploration_stats.cursors_popped,
            got.exploration_stats.cursors_popped)
      << context;
  EXPECT_EQ(expect.exploration_stats.subgraphs_generated,
            got.exploration_stats.subgraphs_generated)
      << context;
  EXPECT_EQ(expect.exploration_stats.subgraphs_deduplicated,
            got.exploration_stats.subgraphs_deduplicated)
      << context;
}

/// Builds one engine per reachable tier (construction itself runs under the
/// tier) and pins every tier's results to the scalar engine's. Two rounds
/// per keyword set so the augmentation-cache hit path is covered too.
void ExpectTiersAgree(const Dataset& dataset, const std::string& tag,
                      const std::vector<std::vector<std::string>>& keyword_sets,
                      std::size_t k = 5) {
  LevelGuard guard;
  simd::SetActiveLevel(simd::Level::kScalar);
  KeywordSearchEngine scalar_engine(dataset.store, dataset.dictionary);
  std::vector<KeywordSearchEngine::SearchResult> scalar_results;
  for (int round = 0; round < 2; ++round) {
    for (const auto& keywords : keyword_sets) {
      scalar_results.push_back(scalar_engine.Search(keywords, k));
    }
  }
  for (simd::Level level : ReachableLevels()) {
    if (level == simd::Level::kScalar) continue;
    ASSERT_EQ(simd::SetActiveLevel(level), level);
    KeywordSearchEngine engine(dataset.store, dataset.dictionary);
    EXPECT_STREQ(engine.index_stats().simd_kernel_level,
                 simd::LevelName(level));
    std::size_t i = 0;
    for (int round = 0; round < 2; ++round) {
      for (const auto& keywords : keyword_sets) {
        ExpectSameResult(
            scalar_results[i++], engine.Search(keywords, k),
            StrFormat("%s %s round %d %s", tag.c_str(),
                      simd::LevelName(level), round,
                      Join(keywords, "+").c_str()));
      }
    }
  }
}

TEST(SimdDifferentialTest, Figure1RunningExample) {
  ExpectTiersAgree(grasp::testing::MakeFigure1Dataset(), "fig1",
                   {{"2006", "cimiano", "aifb"},
                    {"name"},
                    {"publication", "project"},
                    {"researcher", "institute"},
                    {">2000", "publication"},
                    {"resercher"},  // fuzzy: one edit from "researcher"
                    {"cimano", "aifb"}});
}

TEST(SimdDifferentialTest, Figure1CorpusReplay) {
  const Dataset dataset = grasp::testing::MakeFigure1Dataset();
  ExpectTiersAgree(dataset, "fig1_corpus",
                   grasp::testing::LoadKeywordCorpus("fig1_keyword_sets.txt"));
}

TEST(SimdDifferentialTest, LubmSlice) {
  Dataset dataset;
  datagen::LubmOptions options;
  options.num_universities = 1;
  options.departments_per_university = 2;
  datagen::GenerateLubm(options, &dataset.dictionary, &dataset.store);
  dataset.store.Finalize();
  ExpectTiersAgree(dataset, "lubm",
                   {{"publication", "professor"},
                    {"course", "student", "name"},
                    {"departmant"},  // fuzzy hit
                    {"department"}});
}

TEST(SimdDifferentialTest, TapStyle) {
  Dataset dataset;
  datagen::TapOptions options;
  options.num_classes = 32;
  datagen::GenerateTap(options, &dataset.dictionary, &dataset.store);
  dataset.store.Finalize();
  ExpectTiersAgree(dataset, "tap",
                   {{"album", "team"}, {"city", "player", "name"}});
}

class RandomizedSimdDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedSimdDifferentialTest, RandomDatasetAndKeywords) {
  Rng rng(GetParam() * 9199 + 3);
  Dataset dataset = grasp::testing::MakeRandomDataset(
      GetParam(), /*num_classes=*/4, /*num_entities=*/16,
      /*num_relations=*/20, /*num_predicates=*/3, /*num_attributes=*/12,
      /*value_pool=*/5);
  std::vector<std::string> vocabulary = {"class0", "class1", "class2",
                                         "class3", "rel0",   "rel1",
                                         "value0", "value1", "attr0"};
  std::vector<std::vector<std::string>> keyword_sets;
  for (int round = 0; round < 4; ++round) {
    rng.Shuffle(&vocabulary);
    const std::size_t m = 1 + rng.NextBelow(3);
    keyword_sets.emplace_back(vocabulary.begin(), vocabulary.begin() + m);
  }
  ExpectTiersAgree(dataset,
                   StrFormat("random%llu",
                             static_cast<unsigned long long>(GetParam())),
                   keyword_sets, /*k=*/1 + rng.NextBelow(8));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedSimdDifferentialTest,
                         ::testing::Values(1, 2, 3));

// Snapshots cross tiers: the on-disk format is tier-independent, so an
// index saved while one tier was dispatched must open and serve byte-
// identical results under every other tier (including the re-derived
// fuzzy-prefilter arrays over the mapped bucket sections).
TEST(SimdDifferentialTest, SnapshotCrossesTiers) {
  LevelGuard guard;
  const Dataset dataset = grasp::testing::MakeFigure1Dataset();
  const std::vector<std::vector<std::string>> keyword_sets = {
      {"2006", "cimiano", "aifb"}, {"publication", "project"}, {"resercher"}};

  simd::SetActiveLevel(simd::Level::kScalar);
  KeywordSearchEngine scalar_engine(dataset.store, dataset.dictionary);
  std::vector<KeywordSearchEngine::SearchResult> scalar_results;
  for (const auto& keywords : keyword_sets) {
    scalar_results.push_back(scalar_engine.Search(keywords, 5));
  }

  const std::vector<simd::Level> levels = ReachableLevels();
  for (simd::Level save_level : levels) {
    simd::SetActiveLevel(save_level);
    const std::string path =
        ::testing::TempDir() + "grasp_simd_cross_" +
        simd::LevelName(save_level) + ".snap";
    const Status saved = scalar_engine.SaveIndex(path);
    ASSERT_TRUE(saved.ok()) << saved.ToString();
    for (simd::Level open_level : levels) {
      simd::SetActiveLevel(open_level);
      auto warm = KeywordSearchEngine::Open(path);
      ASSERT_TRUE(warm.ok()) << warm.status().ToString();
      for (std::size_t i = 0; i < keyword_sets.size(); ++i) {
        ExpectSameResult(
            scalar_results[i], (*warm)->Search(keyword_sets[i], 5),
            StrFormat("save=%s open=%s set %zu", simd::LevelName(save_level),
                      simd::LevelName(open_level), i));
      }
    }
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace grasp::core
