// Filtered-edge-view coverage: EdgeFilter / FilteredGraph unit behaviour
// (word-boundary shapes, word-at-a-time enumeration, view-vs-filter-after
// adjacency), and the randomized differential suite for predicate-scoped
// exploration — the flat SubgraphExplorer traversing word-scanned filtered
// views must be byte-identical to the ReferenceExplorer, which explores the
// full incident chains and rejects masked edges with a per-edge branch
// (the explore-on-full-graph-then-reject formulation). Fixtures: Fig. 1,
// LUBM, TAP, seeded random graphs, plus the checked-in corpus seeds; scopes
// sweep predicate subsets derived from each dataset. Engine-level tests pin
// KeywordQuery::predicate_scope semantics (atoms only use in-scope
// predicates; an all-covering scope changes nothing; scope masks are
// cached).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "core/exploration.h"
#include "core/exploration_reference.h"
#include "datagen/lubm_gen.h"
#include "datagen/tap_gen.h"
#include "graph/edge_filter.h"
#include "graph/filtered_graph.h"
#include "keyword/keyword_index.h"
#include "rdf/data_graph.h"
#include "rdf/term.h"
#include "summary/augmented_graph.h"
#include "summary/summary_graph.h"
#include "test_util.h"

namespace grasp::core {
namespace {

using graph::EdgeFilter;
using graph::FilteredIds;
using graph::OverlayEdgeFilter;
using summary::AugmentedGraph;
using summary::SummaryGraph;

// ------------------------------------------------------ EdgeFilter units --

TEST(EdgeFilterTest, BuildContainsAndCountAcrossWordBoundaries) {
  for (std::uint32_t n : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 130u, 200u}) {
    const EdgeFilter f =
        EdgeFilter::Build(n, [](std::uint32_t e) { return e % 3 == 0; });
    EXPECT_EQ(f.num_edges(), n);
    std::size_t expected_count = 0;
    EdgeFilter::Cursor cursor(f);
    for (std::uint32_t e = 0; e < n; ++e) {
      const bool expected = e % 3 == 0;
      EXPECT_EQ(f.Contains(e), expected) << "n=" << n << " e=" << e;
      EXPECT_EQ(cursor.Contains(e), expected) << "n=" << n << " e=" << e;
      if (expected) ++expected_count;
    }
    EXPECT_EQ(f.CountSet(), expected_count) << "n=" << n;

    // Word-at-a-time enumeration yields exactly the set bits, ascending.
    std::vector<std::uint32_t> enumerated;
    f.ForEachSet([&](std::uint32_t e) { enumerated.push_back(e); });
    std::vector<std::uint32_t> expected_ids;
    for (std::uint32_t e = 0; e < n; e += 3) expected_ids.push_back(e);
    EXPECT_EQ(enumerated, expected_ids) << "n=" << n;
  }
}

TEST(EdgeFilterTest, FullAndEmptyMasks) {
  const EdgeFilter full = EdgeFilter::MakeFull(100);
  const EdgeFilter none = EdgeFilter::MakeEmpty(100);
  EXPECT_EQ(full.CountSet(), 100u);
  EXPECT_EQ(none.CountSet(), 0u);
  EXPECT_TRUE(full.Contains(99));
  EXPECT_FALSE(none.Contains(0));
}

TEST(EdgeFilterTest, FromPartsRoundTripsWords) {
  const EdgeFilter built =
      EdgeFilter::Build(70, [](std::uint32_t e) { return (e & 1) == 0; });
  AlignedVector<std::uint64_t> words(built.words().begin(), built.words().end());
  const EdgeFilter adopted = EdgeFilter::FromParts(
      FlatStorage<std::uint64_t>(std::move(words)), built.num_edges());
  ASSERT_EQ(adopted.num_edges(), built.num_edges());
  for (std::uint32_t e = 0; e < built.num_edges(); ++e) {
    EXPECT_EQ(adopted.Contains(e), built.Contains(e)) << e;
  }
}

TEST(EdgeFilterTest, ComposeOpsMatchPerBitAcrossWordBoundaries) {
  for (std::uint32_t n : {0u, 63u, 64u, 65u, 127u, 128u, 513u}) {
    const EdgeFilter a =
        EdgeFilter::Build(n, [](std::uint32_t e) { return e % 3 == 0; });
    const EdgeFilter b =
        EdgeFilter::Build(n, [](std::uint32_t e) { return e % 5 < 2; });
    const EdgeFilter both = EdgeFilter::And(a, b);
    const EdgeFilter either = EdgeFilter::Or(a, b);
    const EdgeFilter only_a = EdgeFilter::AndNot(a, b);
    std::size_t expect_and = 0, expect_or = 0, expect_andnot = 0;
    for (std::uint32_t e = 0; e < n; ++e) {
      const bool in_a = e % 3 == 0;
      const bool in_b = e % 5 < 2;
      EXPECT_EQ(both.Contains(e), in_a && in_b) << "n=" << n << " e=" << e;
      EXPECT_EQ(either.Contains(e), in_a || in_b) << "n=" << n << " e=" << e;
      EXPECT_EQ(only_a.Contains(e), in_a && !in_b) << "n=" << n << " e=" << e;
      expect_and += in_a && in_b;
      expect_or += in_a || in_b;
      expect_andnot += in_a && !in_b;
    }
    // CountSet is a whole-word popcount, so these only hold if composition
    // re-applied the tail mask (Or's padding would otherwise survive the
    // word-level op whenever both inputs were built full).
    EXPECT_EQ(both.CountSet(), expect_and) << "n=" << n;
    EXPECT_EQ(either.CountSet(), expect_or) << "n=" << n;
    EXPECT_EQ(only_a.CountSet(), expect_andnot) << "n=" << n;
    if (n % 64 != 0) {
      const EdgeFilter full_or =
          EdgeFilter::Or(EdgeFilter::MakeFull(n), EdgeFilter::MakeFull(n));
      ASSERT_FALSE(full_or.words().empty());
      EXPECT_EQ(full_or.words().back() & ~EdgeFilter::TailMask(n), 0u)
          << "n=" << n;
      EXPECT_EQ(full_or.CountSet(), n);
    }
  }
}

TEST(EdgeFilterTest, ForEachSetCrossesCollectChunkBoundaries) {
  // Sizes straddling the enumerator's internal word-chunking: one bit per
  // word, plus dense words, over >8 words.
  for (std::uint32_t n : {511u, 512u, 513u, 1025u}) {
    const EdgeFilter sparse = EdgeFilter::Build(
        n, [](std::uint32_t e) { return e % 64 == 63 || e % 97 == 0; });
    std::vector<std::uint32_t> enumerated;
    sparse.ForEachSet([&](std::uint32_t e) { enumerated.push_back(e); });
    std::vector<std::uint32_t> expected;
    for (std::uint32_t e = 0; e < n; ++e) {
      if (e % 64 == 63 || e % 97 == 0) expected.push_back(e);
    }
    EXPECT_EQ(enumerated, expected) << "n=" << n;

    const EdgeFilter full = EdgeFilter::MakeFull(n);
    std::uint32_t next = 0;
    full.ForEachSet([&](std::uint32_t e) { EXPECT_EQ(e, next++); });
    EXPECT_EQ(next, n);
  }
}

TEST(EdgeFilterTest, FilteredIdsSkipsMaskedAndHandlesEdgeRuns) {
  const EdgeFilter f =
      EdgeFilter::Build(128, [](std::uint32_t e) { return e % 5 == 0; });
  // Non-contiguous run crossing the word boundary, unordered tail.
  const std::vector<std::uint32_t> run = {0, 3, 5, 63, 64, 65, 70, 100, 125};
  std::vector<std::uint32_t> got;
  for (std::uint32_t e : FilteredIds(run, f)) got.push_back(e);
  std::vector<std::uint32_t> expected;
  for (std::uint32_t e : run) {
    if (f.Contains(e)) expected.push_back(e);
  }
  EXPECT_EQ(got, expected);
  EXPECT_EQ(FilteredIds(run, f).count(), expected.size());

  // All-masked and empty runs produce empty ranges.
  const EdgeFilter none = EdgeFilter::MakeEmpty(128);
  EXPECT_TRUE(FilteredIds(run, none).empty());
  EXPECT_TRUE(FilteredIds({}, f).empty());
}

TEST(EdgeFilterTest, OverlayCompositionSplitsIdSpace) {
  const EdgeFilter base =
      EdgeFilter::Build(10, [](std::uint32_t e) { return e < 5; });
  EdgeFilter overlay =
      EdgeFilter::Build(4, [](std::uint32_t e) { return e % 2 == 1; });
  const OverlayEdgeFilter composed(&base, std::move(overlay), 10);
  for (std::uint32_t e = 0; e < 10; ++e) {
    EXPECT_EQ(composed.Contains(e), e < 5) << e;
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(composed.Contains(10 + i), i % 2 == 1) << i;
    EXPECT_EQ(composed.ContainsOverlay(10 + i), i % 2 == 1) << i;
  }
}

// ------------------------------------------- DataGraph filtered views ----

/// The filtered view of every adjacency run must equal filtering the raw
/// run after the fact.
void ExpectViewMatchesFilterAfter(const rdf::DataGraph& graph,
                                  const EdgeFilter& filter,
                                  const std::string& context) {
  const auto view = graph.Filtered(filter);
  ASSERT_EQ(view.NumEdges(), graph.NumEdges()) << context;
  EXPECT_EQ(view.NumAdmittedEdges(), filter.CountSet()) << context;
  for (rdf::VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (auto accessor : {0, 1}) {
      const std::span<const rdf::EdgeId> raw =
          accessor == 0 ? graph.OutEdges(v) : graph.InEdges(v);
      std::vector<rdf::EdgeId> expected;
      for (rdf::EdgeId e : raw) {
        if (filter.Contains(e)) expected.push_back(e);
      }
      std::vector<rdf::EdgeId> got;
      const FilteredIds run = accessor == 0 ? view.OutEdges(v) : view.InEdges(v);
      for (rdf::EdgeId e : run) got.push_back(e);
      EXPECT_EQ(got, expected)
          << context << " vertex " << v << " accessor " << accessor;
    }
  }
}

TEST(DataGraphFilterTest, KindAndPredicateViewsMatchFilterAfter) {
  grasp::testing::Dataset dataset = grasp::testing::MakeFigure1Dataset();
  const rdf::DataGraph graph =
      rdf::DataGraph::Build(dataset.store, dataset.dictionary);

  const EdgeFilter relations =
      graph.KindFilter(rdf::EdgeKindBit(rdf::EdgeKind::kRelation));
  ExpectViewMatchesFilterAfter(graph, relations, "fig1 relations");
  for (rdf::EdgeId e = 0; e < graph.NumEdges(); ++e) {
    EXPECT_EQ(relations.Contains(e),
              graph.edge(e).kind == rdf::EdgeKind::kRelation);
  }

  const EdgeFilter rel_attr =
      graph.KindFilter(rdf::EdgeKindBit(rdf::EdgeKind::kRelation) |
                       rdf::EdgeKindBit(rdf::EdgeKind::kAttribute));
  ExpectViewMatchesFilterAfter(graph, rel_attr, "fig1 relations+attributes");

  // Predicate filter: only `author` edges (plus nothing structural).
  const rdf::TermId author = dataset.dictionary.Find(
      rdf::TermKind::kIri, std::string(grasp::testing::kEx) + "author");
  ASSERT_NE(author, rdf::kInvalidTermId);
  const std::vector<rdf::TermId> scope{author};
  const EdgeFilter author_only = graph.PredicateFilter(scope);
  ExpectViewMatchesFilterAfter(graph, author_only, "fig1 author");
  EXPECT_EQ(author_only.CountSet(), 2u);  // pub1 author re1 / re2
  for (rdf::EdgeId e = 0; e < graph.NumEdges(); ++e) {
    EXPECT_EQ(author_only.Contains(e), graph.edge(e).label == author);
  }

  // extra_kind_mask keeps whole kinds regardless of label.
  const EdgeFilter author_and_types = graph.PredicateFilter(
      scope, rdf::EdgeKindBit(rdf::EdgeKind::kType));
  for (rdf::EdgeId e = 0; e < graph.NumEdges(); ++e) {
    EXPECT_EQ(author_and_types.Contains(e),
              graph.edge(e).label == author ||
                  graph.edge(e).kind == rdf::EdgeKind::kType);
  }
}

TEST(DataGraphFilterTest, RandomGraphViewsMatchFilterAfter) {
  for (std::uint64_t seed : {std::uint64_t{7}, std::uint64_t{11}}) {
    grasp::testing::Dataset dataset = grasp::testing::MakeRandomDataset(
        seed, /*num_classes=*/4, /*num_entities=*/20, /*num_relations=*/30,
        /*num_predicates=*/4, /*num_attributes=*/15, /*value_pool=*/5);
    const rdf::DataGraph graph =
        rdf::DataGraph::Build(dataset.store, dataset.dictionary);
    Rng rng(seed * 31 + 1);
    for (int round = 0; round < 3; ++round) {
      const EdgeFilter random_mask = EdgeFilter::Build(
          static_cast<std::uint32_t>(graph.NumEdges()),
          [&](std::uint32_t) { return rng.NextBernoulli(0.4); });
      ExpectViewMatchesFilterAfter(
          graph, random_mask,
          StrFormat("random seed=%llu round=%d",
                    static_cast<unsigned long long>(seed), round));
    }
  }
}

// ----------------------------------- scoped exploration differentials ----

struct Pipeline {
  rdf::Dictionary dictionary;
  rdf::TripleStore store;
  std::unique_ptr<rdf::DataGraph> graph;
  std::unique_ptr<SummaryGraph> summary;
  std::unique_ptr<keyword::KeywordIndex> index;
};

Pipeline FromDataset(grasp::testing::Dataset dataset) {
  Pipeline p;
  p.dictionary = std::move(dataset.dictionary);
  p.store = std::move(dataset.store);
  p.graph = std::make_unique<rdf::DataGraph>(
      rdf::DataGraph::Build(p.store, p.dictionary));
  p.summary = std::make_unique<SummaryGraph>(SummaryGraph::Build(*p.graph));
  p.index = std::make_unique<keyword::KeywordIndex>(
      keyword::KeywordIndex::Build(*p.graph));
  return p;
}

AugmentedGraph Augment(const Pipeline& p,
                       const std::vector<std::string>& keywords) {
  return AugmentedGraph::Build(
      *p.summary, grasp::testing::CorpusLookup(*p.index, keywords, 8));
}

/// Distinct non-structural predicate terms of the data graph (relation and
/// attribute labels), ascending — the vocabulary scopes are drawn from.
std::vector<rdf::TermId> DatasetPredicates(const rdf::DataGraph& graph) {
  std::set<rdf::TermId> labels;
  for (const rdf::Edge& e : graph.edges()) {
    if (e.kind == rdf::EdgeKind::kRelation ||
        e.kind == rdf::EdgeKind::kAttribute) {
      labels.insert(e.label);
    }
  }
  return {labels.begin(), labels.end()};
}

/// Deterministic scope subsets per dataset: everything, the even-indexed
/// half, a singleton, and the empty scope (subclass edges only).
std::vector<std::vector<rdf::TermId>> ScopeSubsets(
    const std::vector<rdf::TermId>& predicates) {
  std::vector<std::vector<rdf::TermId>> scopes;
  scopes.push_back(predicates);
  std::vector<rdf::TermId> half;
  for (std::size_t i = 0; i < predicates.size(); i += 2) {
    half.push_back(predicates[i]);
  }
  scopes.push_back(std::move(half));
  if (!predicates.empty()) scopes.push_back({predicates.front()});
  scopes.push_back({});
  return scopes;
}

/// Runs the flat explorer on the word-scanned filtered view and the
/// reference explorer on full-chain-with-inline-reject; both see the same
/// composed scope filter and must agree byte for byte.
void ExpectIdenticalScopedTopK(const AugmentedGraph& augmented,
                               const OverlayEdgeFilter* scope,
                               ExplorationOptions options,
                               ExplorationScratch* scratch,
                               const std::string& context) {
  options.edge_filter = scope;
  SubgraphExplorer flat(augmented, options, scratch);
  const auto actual = flat.FindTopK();
  ReferenceExplorer reference(augmented, options);
  const auto expected = reference.FindTopK();

  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].cost, expected[i].cost) << context << " rank " << i;
    EXPECT_EQ(actual[i].StructureKey(), expected[i].StructureKey())
        << context << " rank " << i;
  }
  EXPECT_EQ(flat.stats().cursors_created, reference.stats().cursors_created)
      << context;
  EXPECT_EQ(flat.stats().cursors_popped, reference.stats().cursors_popped)
      << context;
  EXPECT_EQ(flat.stats().subgraphs_generated,
            reference.stats().subgraphs_generated)
      << context;

  // Scoped results must only contain in-scope edges — the semantic
  // guarantee the whole feature exists for.
  if (scope != nullptr) {
    for (const auto& sg : actual) {
      for (summary::EdgeId e : sg.edges) {
        EXPECT_TRUE(scope->Contains(e)) << context << " out-of-scope edge";
      }
    }
  }
}

/// Reduced option matrix (the full one lives in the unscoped differential
/// suite; scope multiplies the sweep here).
std::vector<ExplorationOptions> ScopedOptionMatrix() {
  std::vector<ExplorationOptions> all;
  for (CostModel model : {CostModel::kPathLength, CostModel::kMatching}) {
    for (std::size_t k : {1u, 8u}) {
      for (bool prune : {true, false}) {
        ExplorationOptions options;
        options.k = k;
        options.cost_model = model;
        options.prune_paths_per_element = prune;
        options.tightened_bound = !prune;
        all.push_back(options);
      }
    }
  }
  return all;
}

void RunScopedDifferential(const Pipeline& p,
                           const std::vector<std::vector<std::string>>& sets,
                           const std::string& tag) {
  const std::vector<rdf::TermId> predicates = DatasetPredicates(*p.graph);
  ExplorationScratch scratch;
  for (const auto& keywords : sets) {
    const AugmentedGraph augmented = Augment(p, keywords);
    std::size_t scope_idx = 0;
    for (const auto& scope_terms : ScopeSubsets(predicates)) {
      const EdgeFilter base = p.summary->PredicateScopeFilter(scope_terms);
      const OverlayEdgeFilter scoped =
          augmented.ScopedFilter(&base, scope_terms);
      for (const ExplorationOptions& options : ScopedOptionMatrix()) {
        ExpectIdenticalScopedTopK(
            augmented, &scoped, options, &scratch,
            StrFormat("%s %s scope=%zu k=%zu model=%d prune=%d", tag.c_str(),
                      Join(keywords, "+").c_str(), scope_idx, options.k,
                      static_cast<int>(options.cost_model),
                      options.prune_paths_per_element ? 1 : 0));
      }
      ++scope_idx;
    }
  }
}

TEST(FilteredExplorationTest, Figure1Fixture) {
  Pipeline p = FromDataset(grasp::testing::MakeFigure1Dataset());
  RunScopedDifferential(p,
                        {{"2006", "cimiano", "aifb"},
                         {"publication", "project"},
                         {"name", "institute"}},
                        "fig1");
}

TEST(FilteredExplorationTest, LubmFixture) {
  Pipeline p;
  datagen::LubmOptions options;
  options.num_universities = 1;
  options.departments_per_university = 2;
  datagen::GenerateLubm(options, &p.dictionary, &p.store);
  p.store.Finalize();
  p.graph = std::make_unique<rdf::DataGraph>(
      rdf::DataGraph::Build(p.store, p.dictionary));
  p.summary = std::make_unique<SummaryGraph>(SummaryGraph::Build(*p.graph));
  p.index = std::make_unique<keyword::KeywordIndex>(
      keyword::KeywordIndex::Build(*p.graph));
  RunScopedDifferential(
      p, {{"publication", "professor"}, {"course", "student", "name"}},
      "lubm");
}

TEST(FilteredExplorationTest, TapFixture) {
  Pipeline p;
  datagen::TapOptions tap;
  tap.num_classes = 24;
  datagen::GenerateTap(tap, &p.dictionary, &p.store);
  p.store.Finalize();
  p.graph = std::make_unique<rdf::DataGraph>(
      rdf::DataGraph::Build(p.store, p.dictionary));
  p.summary = std::make_unique<SummaryGraph>(SummaryGraph::Build(*p.graph));
  p.index = std::make_unique<keyword::KeywordIndex>(
      keyword::KeywordIndex::Build(*p.graph));
  RunScopedDifferential(p, {{"item", "album"}, {"team", "name"}}, "tap");
}

/// An all-covering scope must not perturb anything: byte-identical to the
/// unscoped run, including the exploration counters.
TEST(FilteredExplorationTest, FullScopeMatchesUnscoped) {
  Pipeline p = FromDataset(grasp::testing::MakeFigure1Dataset());
  const std::vector<rdf::TermId> all = DatasetPredicates(*p.graph);
  const AugmentedGraph augmented = Augment(p, {"2006", "cimiano", "aifb"});
  const EdgeFilter base = p.summary->PredicateScopeFilter(all);
  const OverlayEdgeFilter scoped = augmented.ScopedFilter(&base, all);

  for (const ExplorationOptions& options : ScopedOptionMatrix()) {
    ExplorationOptions scoped_options = options;
    scoped_options.edge_filter = &scoped;
    SubgraphExplorer with_scope(augmented, scoped_options);
    SubgraphExplorer without(augmented, options);
    const auto a = with_scope.FindTopK();
    const auto b = without.FindTopK();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].cost, b[i].cost);
      EXPECT_EQ(a[i].StructureKey(), b[i].StructureKey());
    }
    EXPECT_EQ(with_scope.stats().cursors_popped,
              without.stats().cursors_popped);
    EXPECT_EQ(with_scope.stats().cursors_created,
              without.stats().cursors_created);
  }
}

// Corpus replay (tests/corpus/): every checked-in keyword-set shape runs
// through the scoped differential too — add a seed line there whenever a
// randomized run surfaces a breaking filter shape.
TEST(FilteredExplorationTest, CorpusReplayFigure1) {
  Pipeline p = FromDataset(grasp::testing::MakeFigure1Dataset());
  const std::vector<rdf::TermId> predicates = DatasetPredicates(*p.graph);
  ExplorationScratch scratch;
  for (const auto& keywords :
       grasp::testing::LoadKeywordCorpus("fig1_keyword_sets.txt")) {
    const AugmentedGraph augmented = Augment(p, keywords);
    std::size_t scope_idx = 0;
    for (const auto& scope_terms : ScopeSubsets(predicates)) {
      const EdgeFilter base = p.summary->PredicateScopeFilter(scope_terms);
      const OverlayEdgeFilter scoped =
          augmented.ScopedFilter(&base, scope_terms);
      ExplorationOptions options;
      options.k = 8;
      ExpectIdenticalScopedTopK(
          augmented, &scoped, options, &scratch,
          StrFormat("fig1 corpus %s scope=%zu", Join(keywords, "+").c_str(),
                    scope_idx));
      ++scope_idx;
    }
  }
}

TEST(FilteredExplorationTest, CorpusReplayRandomGraphs) {
  for (std::uint64_t seed : {std::uint64_t{303}, std::uint64_t{404}}) {
    Pipeline p = FromDataset(grasp::testing::MakeRandomDataset(
        seed, /*num_classes=*/4, /*num_entities=*/14, /*num_relations=*/18,
        /*num_predicates=*/3, /*num_attributes=*/10, /*value_pool=*/4));
    const std::vector<rdf::TermId> predicates = DatasetPredicates(*p.graph);
    ExplorationScratch scratch;
    for (const auto& keywords :
         grasp::testing::LoadKeywordCorpus("generic_keyword_sets.txt")) {
      const AugmentedGraph augmented = Augment(p, keywords);
      std::size_t scope_idx = 0;
      for (const auto& scope_terms : ScopeSubsets(predicates)) {
        const EdgeFilter base = p.summary->PredicateScopeFilter(scope_terms);
        const OverlayEdgeFilter scoped =
            augmented.ScopedFilter(&base, scope_terms);
        ExplorationOptions options;
        options.k = 8;
        ExpectIdenticalScopedTopK(
            augmented, &scoped, options, &scratch,
            StrFormat("random seed=%llu corpus %s scope=%zu",
                      static_cast<unsigned long long>(seed),
                      Join(keywords, "+").c_str(), scope_idx));
        ++scope_idx;
      }
    }
  }
}

/// Seeded random graphs x random keyword sets x random scope subsets x
/// randomized options — the fuzz loop of the scoped differential.
class RandomizedScopedDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedScopedDifferentialTest, RandomGraphsAndScopes) {
  Rng rng(GetParam() * 9241 + 5);
  Pipeline p = FromDataset(grasp::testing::MakeRandomDataset(
      GetParam(), /*num_classes=*/4, /*num_entities=*/14,
      /*num_relations=*/18, /*num_predicates=*/3, /*num_attributes=*/10,
      /*value_pool=*/4));
  const std::vector<rdf::TermId> predicates = DatasetPredicates(*p.graph);

  std::vector<std::string> vocabulary = {"class0", "class1", "class2",
                                         "class3", "rel0",   "rel1",
                                         "rel2",   "value0", "value1",
                                         "attr0",  "attr1"};
  ExplorationScratch scratch;
  for (int round = 0; round < 4; ++round) {
    rng.Shuffle(&vocabulary);
    const std::size_t m = 1 + rng.NextBelow(3);
    std::vector<std::string> keywords(vocabulary.begin(),
                                      vocabulary.begin() + m);
    const AugmentedGraph augmented = Augment(p, keywords);

    // Random scope subset (possibly empty, possibly everything).
    std::vector<rdf::TermId> scope_terms;
    for (rdf::TermId t : predicates) {
      if (rng.NextBernoulli(0.5)) scope_terms.push_back(t);
    }
    const EdgeFilter base = p.summary->PredicateScopeFilter(scope_terms);
    const OverlayEdgeFilter scoped = augmented.ScopedFilter(&base, scope_terms);

    ExplorationOptions options;
    options.k = 1 + rng.NextBelow(8);
    options.dmax = 3 + rng.NextBelow(8);
    options.cost_model = static_cast<CostModel>(1 + rng.NextBelow(3));
    options.prune_paths_per_element = rng.NextBernoulli(0.7);
    options.tightened_bound = rng.NextBernoulli(0.5);
    options.distance_pruning = rng.NextBernoulli(0.3);
    ExpectIdenticalScopedTopK(
        augmented, &scoped, options, &scratch,
        StrFormat("random seed=%llu %s |scope|=%zu k=%zu dmax=%u model=%d",
                  static_cast<unsigned long long>(GetParam()),
                  Join(keywords, "+").c_str(), scope_terms.size(), options.k,
                  options.dmax, static_cast<int>(options.cost_model)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedScopedDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --------------------------------------------- engine predicate scopes ---

TEST(EngineScopeTest, ScopedAtomsOnlyUseInScopePredicates) {
  grasp::testing::Dataset dataset = grasp::testing::MakeFigure1Dataset();
  KeywordSearchEngine engine(dataset.store, dataset.dictionary);

  KeywordSearchEngine::KeywordQuery query;
  query.keywords = {"2006", "cimiano", "aifb"};
  query.k = 5;
  // Local-name scope strings exercise the dictionary-scan fallback.
  query.predicate_scope = {"name", "author", "year", "worksAt"};
  const auto scoped = engine.Search(query);
  EXPECT_FALSE(scoped.queries.empty());

  std::set<rdf::TermId> allowed;
  for (const std::string& s : query.predicate_scope) {
    for (rdf::TermId t = 0; t < dataset.dictionary.size(); ++t) {
      if (dataset.dictionary.kind(t) == rdf::TermKind::kIri &&
          rdf::IriLocalName(dataset.dictionary.text(t)) == s) {
        allowed.insert(t);
      }
    }
  }
  allowed.insert(engine.data_graph().type_term());
  allowed.insert(engine.data_graph().subclass_term());
  for (const auto& ranked : scoped.queries) {
    for (const query::Atom& atom : ranked.query.atoms()) {
      EXPECT_TRUE(allowed.count(atom.predicate) > 0)
          << "atom uses out-of-scope predicate "
          << dataset.dictionary.text(atom.predicate);
    }
  }

  // Excluding `worksAt` severs the researcher-institute connection the
  // top interpretation needs; results must change accordingly, and never
  // mention the predicate.
  query.predicate_scope = {"name", "author", "year"};
  const auto narrower = engine.Search(query);
  const rdf::TermId works_at = dataset.dictionary.Find(
      rdf::TermKind::kIri, std::string(grasp::testing::kEx) + "worksAt");
  ASSERT_NE(works_at, rdf::kInvalidTermId);
  for (const auto& ranked : narrower.queries) {
    for (const query::Atom& atom : ranked.query.atoms()) {
      EXPECT_NE(atom.predicate, works_at);
    }
  }
}

TEST(EngineScopeTest, AllCoveringScopeMatchesUnscopedSearch) {
  grasp::testing::Dataset dataset = grasp::testing::MakeFigure1Dataset();
  KeywordSearchEngine engine(dataset.store, dataset.dictionary);
  const rdf::DataGraph& graph = engine.data_graph();

  std::set<std::string> names;
  for (const rdf::Edge& e : graph.edges()) {
    if (e.kind == rdf::EdgeKind::kRelation ||
        e.kind == rdf::EdgeKind::kAttribute) {
      names.emplace(rdf::IriLocalName(dataset.dictionary.text(e.label)));
    }
  }
  KeywordSearchEngine::KeywordQuery query;
  query.keywords = {"2006", "cimiano", "aifb"};
  query.k = 5;
  query.predicate_scope.assign(names.begin(), names.end());

  const auto scoped = engine.Search(query);
  const auto unscoped = engine.Search(query.keywords, query.k);
  ASSERT_EQ(scoped.queries.size(), unscoped.queries.size());
  for (std::size_t i = 0; i < scoped.queries.size(); ++i) {
    EXPECT_EQ(scoped.queries[i].cost, unscoped.queries[i].cost) << i;
    EXPECT_EQ(scoped.queries[i].query.CanonicalString(),
              unscoped.queries[i].query.CanonicalString())
        << i;
  }
  EXPECT_EQ(scoped.exploration_stats.cursors_popped,
            unscoped.exploration_stats.cursors_popped);
}

TEST(EngineScopeTest, ScopeMasksAreCachedAndAccounted) {
  grasp::testing::Dataset dataset = grasp::testing::MakeFigure1Dataset();
  KeywordSearchEngine engine(dataset.store, dataset.dictionary);
  EXPECT_EQ(engine.index_stats().scope_cache_bytes, 0u);

  KeywordSearchEngine::KeywordQuery query;
  query.keywords = {"2006", "aifb"};
  query.k = 3;
  query.predicate_scope = {"name", "year", "worksAt"};
  const auto first = engine.Search(query);
  const std::size_t after_first = engine.index_stats().scope_cache_bytes;
  EXPECT_GT(after_first, 0u);

  // Same scope in any order hits the same canonical cache entry; results
  // are deterministic across repeats.
  query.predicate_scope = {"worksAt", "name", "year"};
  const auto second = engine.Search(query);
  EXPECT_EQ(engine.index_stats().scope_cache_bytes, after_first);
  ASSERT_EQ(first.queries.size(), second.queries.size());
  for (std::size_t i = 0; i < first.queries.size(); ++i) {
    EXPECT_EQ(first.queries[i].query.CanonicalString(),
              second.queries[i].query.CanonicalString());
    EXPECT_EQ(first.queries[i].cost, second.queries[i].cost);
  }

  query.predicate_scope = {"author"};
  engine.Search(query);
  EXPECT_GT(engine.index_stats().scope_cache_bytes, after_first);
}

TEST(EngineScopeTest, UnresolvableScopeYieldsNoRelationalAnswers) {
  grasp::testing::Dataset dataset = grasp::testing::MakeFigure1Dataset();
  KeywordSearchEngine engine(dataset.store, dataset.dictionary);
  KeywordSearchEngine::KeywordQuery query;
  query.keywords = {"2006", "cimiano"};
  query.k = 5;
  query.predicate_scope = {"no-such-predicate"};
  // The two keywords can only connect through attribute edges, all of
  // which are scoped out: the scoped graph admits no interpretation.
  const auto result = engine.Search(query);
  EXPECT_TRUE(result.queries.empty());
}

}  // namespace
}  // namespace grasp::core
