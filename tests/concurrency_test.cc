// Concurrent-serving coverage: the lock-free free-list pool, the
// augmentation cache (hit / miss / eviction paths), and the engine's
// thread-safe Search / SearchBatch. The stress tests pin concurrent results
// byte-identical to serial ones — the concurrency layers must never change
// what a query returns, only how much it costs to serve. Runs under the
// ASan/UBSan job and the TSan job (GRASP_SANITIZE_THREAD) in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/free_list_pool.h"
#include "core/engine.h"
#include "summary/augmentation_cache.h"
#include "summary/augmented_graph.h"
#include "test_util.h"

namespace grasp::core {
namespace {

using KeywordQuery = KeywordSearchEngine::KeywordQuery;
using SearchResult = KeywordSearchEngine::SearchResult;

// ----------------------------------------------------------- FreeListPool --

TEST(FreeListPoolTest, ReusesLifoAndCreatesLazily) {
  FreeListPool<int> pool(4);
  auto make = [] { return std::make_unique<int>(0); };
  auto a = pool.Acquire(make);
  EXPECT_EQ(a.slot, 0u);
  EXPECT_EQ(pool.created(), 1u);
  pool.Release(a);
  // LIFO: the warm slot comes straight back.
  auto b = pool.Acquire(make);
  EXPECT_EQ(b.slot, 0u);
  EXPECT_EQ(b.object, a.object);
  auto c = pool.Acquire(make);
  EXPECT_EQ(c.slot, 1u);
  EXPECT_EQ(pool.created(), 2u);
  pool.Release(c);
  pool.Release(b);
}

TEST(FreeListPoolTest, OverflowsToTransientObjects) {
  FreeListPool<int> pool(2);
  auto make = [] { return std::make_unique<int>(7); };
  auto a = pool.Acquire(make);
  auto b = pool.Acquire(make);
  auto c = pool.Acquire(make);  // beyond capacity
  EXPECT_EQ(c.slot, FreeListPool<int>::kTransient);
  EXPECT_EQ(*c.object, 7);
  EXPECT_EQ(pool.created(), 2u);
  pool.Release(c);  // deletes the transient (ASan would catch a leak)
  pool.Release(b);
  pool.Release(a);
}

TEST(FreeListPoolTest, ConcurrentAcquireNeverSharesAnObject) {
  FreeListPool<std::atomic<int>> pool(8);
  constexpr int kThreads = 8;
  constexpr int kRounds = 3000;
  std::atomic<bool> double_checkout{false};
  auto worker = [&] {
    auto make = [] { return std::make_unique<std::atomic<int>>(0); };
    for (int r = 0; r < kRounds; ++r) {
      auto lease = pool.Acquire(make);
      // Exclusive ownership: the object's flag must have been 0.
      if (lease.object->exchange(1, std::memory_order_acq_rel) != 0) {
        double_checkout.store(true);
      }
      lease.object->store(0, std::memory_order_release);
      pool.Release(lease);
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  EXPECT_FALSE(double_checkout.load());
  EXPECT_LE(pool.created(), 8u);
}

// ------------------------------------------------------ AugmentationCache --

class CacheTest : public ::testing::Test {
 protected:
  CacheTest() : dataset_(grasp::testing::MakeFigure1Dataset()) {
    grasp::rdf::DataGraph graph =
        grasp::rdf::DataGraph::Build(dataset_.store, dataset_.dictionary);
    summary_ = std::make_unique<summary::SummaryGraph>(
        summary::SummaryGraph::Build(graph));
    index_ = std::make_unique<keyword::KeywordIndex>(
        keyword::KeywordIndex::Build(graph));
  }

  std::vector<std::vector<keyword::KeywordMatch>> Matches(
      const std::vector<std::string>& keywords) {
    text::InvertedIndex::SearchOptions options;
    options.max_results = 8;
    std::vector<std::vector<keyword::KeywordMatch>> matches;
    for (const auto& kw : keywords) {
      matches.push_back(index_->Lookup(kw, options));
    }
    return matches;
  }

  summary::AugmentationCache::GraphPtr Build(
      const std::vector<std::vector<keyword::KeywordMatch>>& matches) {
    return std::make_shared<summary::AugmentedGraph>(
        summary::AugmentedGraph::Build(*summary_, matches));
  }

  grasp::testing::Dataset dataset_;
  std::unique_ptr<summary::SummaryGraph> summary_;
  std::unique_ptr<keyword::KeywordIndex> index_;
};

TEST_F(CacheTest, HitMissAndKeySensitivity) {
  summary::AugmentationCache cache(1 << 20);
  const auto m1 = Matches({"2006", "cimiano"});
  const auto m2 = Matches({"cimiano", "2006"});  // order-sensitive key
  int builds = 0;
  auto build1 = [&] { ++builds; return Build(m1); };
  auto build2 = [&] { ++builds; return Build(m2); };

  bool hit = true;
  auto a = cache.GetOrBuild(summary::AugmentationCacheKey(m1), build1, &hit);
  EXPECT_FALSE(hit);
  auto b = cache.GetOrBuild(summary::AugmentationCacheKey(m1), build1, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.get(), b.get());  // shared, not rebuilt
  EXPECT_EQ(builds, 1);

  cache.GetOrBuild(summary::AugmentationCacheKey(m2), build2, &hit);
  EXPECT_FALSE(hit) << "permuted keywords must not alias";
  EXPECT_EQ(builds, 2);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.charged_bytes, 0u);
}

TEST_F(CacheTest, EvictsLeastRecentlyUsedWithinByteBudget) {
  const auto m1 = Matches({"2006"});
  const auto m2 = Matches({"cimiano"});
  const auto m3 = Matches({"aifb"});
  // Measure what one entry charges (graph + key + bookkeeping overhead),
  // then budget for two: the third insert must evict the LRU.
  std::size_t entry_bytes = 0;
  {
    summary::AugmentationCache scout(1u << 30);
    scout.GetOrBuild(summary::AugmentationCacheKey(m1),
                     [&] { return Build(m1); });
    entry_bytes = scout.stats().charged_bytes;
  }
  summary::AugmentationCache cache(entry_bytes * 2 + entry_bytes / 2);

  bool hit = false;
  cache.GetOrBuild(summary::AugmentationCacheKey(m1), [&] { return Build(m1); },
                   &hit);
  cache.GetOrBuild(summary::AugmentationCacheKey(m2), [&] { return Build(m2); },
                   &hit);
  cache.GetOrBuild(summary::AugmentationCacheKey(m3), [&] { return Build(m3); },
                   &hit);
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.charged_bytes, stats.max_bytes);
  // The most recent key survived; the least recent was evicted and rebuilds.
  std::size_t rebuilds = 0;
  cache.GetOrBuild(summary::AugmentationCacheKey(m3),
                   [&] { ++rebuilds; return Build(m3); }, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(rebuilds, 0u);
  cache.GetOrBuild(summary::AugmentationCacheKey(m1),
                   [&] { ++rebuilds; return Build(m1); }, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(rebuilds, 1u);
}

TEST_F(CacheTest, EntryCountBoundEvictsIndependentlyOfBytes) {
  // A huge byte budget with max_entries=2: the third distinct key must
  // still evict the LRU. This is the bound that keeps cache residency from
  // pinning every overlay-pool slot in the engine.
  summary::AugmentationCache cache(1u << 30, /*max_entries=*/2);
  const auto m1 = Matches({"2006"});
  const auto m2 = Matches({"cimiano"});
  const auto m3 = Matches({"aifb"});
  bool hit = false;
  cache.GetOrBuild(summary::AugmentationCacheKey(m1), [&] { return Build(m1); });
  cache.GetOrBuild(summary::AugmentationCacheKey(m2), [&] { return Build(m2); });
  cache.GetOrBuild(summary::AugmentationCacheKey(m3), [&] { return Build(m3); });
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.GetOrBuild(summary::AugmentationCacheKey(m3), [&] { return Build(m3); },
                   &hit);
  EXPECT_TRUE(hit);
  cache.GetOrBuild(summary::AugmentationCacheKey(m1), [&] { return Build(m1); },
                   &hit);
  EXPECT_FALSE(hit) << "LRU entry must have been evicted by the count bound";
}

TEST_F(CacheTest, OversizedEntryEvictsItselfButStillServes) {
  summary::AugmentationCache cache(1);  // nothing fits
  const auto m = Matches({"2006", "cimiano"});
  bool hit = true;
  auto g = cache.GetOrBuild(summary::AugmentationCacheKey(m),
                            [&] { return Build(m); }, &hit);
  EXPECT_FALSE(hit);
  ASSERT_NE(g, nullptr);
  EXPECT_GT(g->NumNodes(), 0u);  // the caller's graph outlives the eviction
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().charged_bytes, 0u);
}

// ----------------------------------------------- engine-level concurrency --

/// The mixed workload the stress tests serve: repeated keys (cache-hit
/// path), distinct keys (miss path), fuzzy and unmatched keywords.
std::vector<KeywordQuery> MixedWorkload() {
  return {
      {{"2006", "cimiano", "aifb"}, 5},
      {{"name", "publication"}, 8},
      {{"2006", "cimiano", "aifb"}, 5},  // repeat: exercises cache sharing
      {{"author", "2006"}, 5},
      {{"cimano"}, 3},                   // fuzzy match
      {{"name", "institute"}, 5},
      {{"qqqqqqq"}, 3},                  // unmatchable: empty result
      {{"2006", "cimiano"}, 4},
  };
}

void ExpectSameResults(const SearchResult& a, const SearchResult& b,
                       const std::string& context) {
  ASSERT_EQ(a.queries.size(), b.queries.size()) << context;
  for (std::size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].cost, b.queries[i].cost) << context << " rank " << i;
    EXPECT_EQ(a.queries[i].query.CanonicalString(),
              b.queries[i].query.CanonicalString())
        << context << " rank " << i;
    EXPECT_EQ(a.queries[i].subgraph.StructureKey(),
              b.queries[i].subgraph.StructureKey())
        << context << " rank " << i;
  }
  EXPECT_EQ(a.matches_per_keyword, b.matches_per_keyword) << context;
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  ConcurrencyTest() : dataset_(grasp::testing::MakeFigure1Dataset()) {}

  KeywordSearchEngine::Options WithCacheBytes(std::size_t bytes) {
    KeywordSearchEngine::Options options;
    options.augmentation_cache_bytes = bytes;
    return options;
  }

  grasp::testing::Dataset dataset_;
};

TEST_F(ConcurrencyTest, SearchBatchMatchesSerialSearch) {
  KeywordSearchEngine engine(dataset_.store, dataset_.dictionary);
  const auto workload = MixedWorkload();

  std::vector<SearchResult> serial;
  for (const auto& q : workload) serial.push_back(engine.Search(q.keywords, q.k));

  const auto batch = engine.SearchBatch(workload, 4);
  ASSERT_EQ(batch.size(), workload.size());
  for (std::size_t i = 0; i < workload.size(); ++i) {
    ExpectSameResults(batch[i], serial[i],
                      "batch query " + std::to_string(i));
  }
}

TEST_F(ConcurrencyTest, ScopedSearchBatchMatchesSerialSearch) {
  // Scoped and unscoped queries mixed in one batch: concurrent workers
  // share the scope-mask cache (first resolution races are benign — equal
  // keys build equal masks) and every result must equal its serial run.
  KeywordSearchEngine engine(dataset_.store, dataset_.dictionary);
  std::vector<KeywordQuery> workload = MixedWorkload();
  workload[0].predicate_scope = {"name", "author", "year", "worksAt"};
  workload[1].predicate_scope = {"name"};
  workload[2].predicate_scope = {"name", "author", "year", "worksAt"};  // repeat
  workload[4].predicate_scope = {"author", "hasProject"};
  workload[6].predicate_scope = {"no-such-predicate"};

  std::vector<SearchResult> serial;
  for (const auto& q : workload) serial.push_back(engine.Search(q));

  for (int round = 0; round < 3; ++round) {
    const auto batch = engine.SearchBatch(workload, 4);
    ASSERT_EQ(batch.size(), workload.size());
    for (std::size_t i = 0; i < workload.size(); ++i) {
      ExpectSameResults(batch[i], serial[i],
                        "scoped batch round " + std::to_string(round) +
                            " query " + std::to_string(i));
    }
  }
  EXPECT_GT(engine.index_stats().scope_cache_bytes, 0u);
}

TEST_F(ConcurrencyTest, SearchBatchSingleThreadAndEmptyInput) {
  KeywordSearchEngine engine(dataset_.store, dataset_.dictionary);
  EXPECT_TRUE(engine.SearchBatch({}, 4).empty());
  const auto workload = MixedWorkload();
  const auto one_thread = engine.SearchBatch(workload, 1);
  for (std::size_t i = 0; i < workload.size(); ++i) {
    ExpectSameResults(one_thread[i],
                      engine.Search(workload[i].keywords, workload[i].k),
                      "single-thread batch query " + std::to_string(i));
  }
}

/// N threads hammer one engine with the mixed workload; every result must
/// equal the serial expectation. Runs with the cache enabled (concurrent
/// hits share one graph) and disabled (every query rebuilds from the
/// overlay pool).
void RunStress(const grasp::testing::Dataset& dataset,
               KeywordSearchEngine::Options options) {
  KeywordSearchEngine engine(dataset.store, dataset.dictionary, options);
  const auto workload = MixedWorkload();
  std::vector<SearchResult> expected;
  for (const auto& q : workload) {
    expected.push_back(engine.Search(q.keywords, q.k));
  }

  constexpr int kThreads = 6;
  constexpr int kRounds = 8;
  std::atomic<int> mismatches{0};
  auto worker = [&](int seed) {
    for (int r = 0; r < kRounds; ++r) {
      // Start each thread at a different workload offset so distinct keys
      // race against each other, not just against their own repeats.
      for (std::size_t i = 0; i < workload.size(); ++i) {
        const std::size_t q =
            (i + static_cast<std::size_t>(seed)) % workload.size();
        const auto result = engine.Search(workload[q].keywords, workload[q].k);
        if (result.queries.size() != expected[q].queries.size()) {
          ++mismatches;
          continue;
        }
        for (std::size_t j = 0; j < result.queries.size(); ++j) {
          if (result.queries[j].cost != expected[q].queries[j].cost ||
              result.queries[j].query.CanonicalString() !=
                  expected[q].queries[j].query.CanonicalString()) {
            ++mismatches;
          }
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ConcurrencyTest, StressConcurrentSearchWithCache) {
  RunStress(dataset_, WithCacheBytes(8u << 20));
}

TEST_F(ConcurrencyTest, StressConcurrentSearchWithoutCache) {
  RunStress(dataset_, WithCacheBytes(0));
}

TEST_F(ConcurrencyTest, StressConcurrentSearchWithThrashingCache) {
  // A budget near one entry forces continuous eviction while queries are
  // in flight: in-flight graphs must survive their entry being evicted.
  RunStress(dataset_, WithCacheBytes(8u << 10));
}

TEST_F(ConcurrencyTest, CacheSettingNeverChangesResults) {
  KeywordSearchEngine cached(dataset_.store, dataset_.dictionary,
                             WithCacheBytes(8u << 20));
  KeywordSearchEngine uncached(dataset_.store, dataset_.dictionary,
                               WithCacheBytes(0));
  std::set<std::vector<std::string>> seen;
  for (const auto& q : MixedWorkload()) {
    // Twice per engine: the second cached run serves from the cache.
    const bool first_occurrence = seen.insert(q.keywords).second;
    const auto cold = cached.Search(q.keywords, q.k);
    const auto warm = cached.Search(q.keywords, q.k);
    const auto baseline = uncached.Search(q.keywords, q.k);
    ExpectSameResults(cold, baseline, "cold vs uncached");
    ExpectSameResults(warm, baseline, "warm vs uncached");
    EXPECT_FALSE(baseline.augmentation_cache_hit);
    if (first_occurrence) EXPECT_FALSE(cold.augmentation_cache_hit);
    EXPECT_TRUE(warm.augmentation_cache_hit);
  }
  const auto stats = cached.augmentation_cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_EQ(uncached.augmentation_cache_stats().hits, 0u);
}

TEST_F(ConcurrencyTest, ServingStatsAccountPoolsAndCache) {
  KeywordSearchEngine engine(dataset_.store, dataset_.dictionary);
  engine.Search({"2006", "cimiano", "aifb"}, 5);
  const auto stats = engine.index_stats();
  EXPECT_GT(stats.scratch_pool_bytes, 0u);
  // The query's overlay shell is resident in the cache, so it is charged
  // there and not to the pool — the two fields must not double-count.
  EXPECT_EQ(stats.overlay_pool_bytes, 0u);
  EXPECT_GT(stats.augmentation_cache_bytes, 0u);
  EXPECT_GT(engine.augmentation_cache_stats().graph_bytes, 0u);

  KeywordSearchEngine uncached(dataset_.store, dataset_.dictionary,
                               WithCacheBytes(0));
  uncached.Search({"2006", "cimiano", "aifb"}, 5);
  EXPECT_EQ(uncached.index_stats().augmentation_cache_bytes, 0u);
  EXPECT_GT(uncached.index_stats().overlay_pool_bytes, 0u);
}

}  // namespace
}  // namespace grasp::core
