// Differential tests: the flat SubgraphExplorer against the retained
// straightforward ReferenceExplorer. The two must agree byte for byte —
// same top-k costs (no tolerance: both sum path costs in the same order)
// and same structure keys — on the paper's running example (Fig. 1), a
// LUBM slice, TAP-style generated graphs, and seeded random graphs with
// random keyword sets and options. This also discharges the ROADMAP
// follow-up on randomized overlay/equivalence coverage: the randomized
// cases sweep keyword sets instead of pinning one.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/filter_op.h"
#include "common/rng.h"
#include "core/exploration.h"
#include "core/exploration_reference.h"
#include "datagen/lubm_gen.h"
#include "datagen/tap_gen.h"
#include "keyword/keyword_index.h"
#include "rdf/data_graph.h"
#include "summary/augmented_graph.h"
#include "summary/summary_graph.h"
#include "test_util.h"

namespace grasp::core {
namespace {

using summary::AugmentedGraph;
using summary::SummaryGraph;

struct Pipeline {
  rdf::Dictionary dictionary;
  rdf::TripleStore store;
  std::unique_ptr<rdf::DataGraph> graph;
  std::unique_ptr<SummaryGraph> summary;
  std::unique_ptr<keyword::KeywordIndex> index;
};

void FinishPipeline(Pipeline* p) {
  p->store.Finalize();
  p->graph = std::make_unique<rdf::DataGraph>(
      rdf::DataGraph::Build(p->store, p->dictionary));
  p->summary = std::make_unique<SummaryGraph>(SummaryGraph::Build(*p->graph));
  p->index = std::make_unique<keyword::KeywordIndex>(
      keyword::KeywordIndex::Build(*p->graph));
}

Pipeline FromDataset(grasp::testing::Dataset dataset) {
  Pipeline p;
  p.dictionary = std::move(dataset.dictionary);
  p.store = std::move(dataset.store);
  p.graph = std::make_unique<rdf::DataGraph>(
      rdf::DataGraph::Build(p.store, p.dictionary));
  p.summary = std::make_unique<SummaryGraph>(SummaryGraph::Build(*p.graph));
  p.index = std::make_unique<keyword::KeywordIndex>(
      keyword::KeywordIndex::Build(*p.graph));
  return p;
}

AugmentedGraph Augment(const Pipeline& p,
                       const std::vector<std::string>& keywords) {
  text::InvertedIndex::SearchOptions options;
  options.max_results = 8;
  std::vector<std::vector<keyword::KeywordMatch>> matches;
  for (const auto& kw : keywords) {
    matches.push_back(p.index->Lookup(kw, options));
  }
  return AugmentedGraph::Build(*p.summary, matches);
}

/// Corpus replay resolves operator keywords (">2000") through the filter
/// extension, exactly like the engine's keyword step.
AugmentedGraph AugmentCorpus(const Pipeline& p,
                             const std::vector<std::string>& keywords) {
  return AugmentedGraph::Build(
      *p.summary, grasp::testing::CorpusLookup(*p.index, keywords, 8));
}

/// Runs both explorers and asserts byte-identical top-k results. The flat
/// explorer runs through a shared scratch to also exercise cross-query
/// reuse the way the engine drives it.
void ExpectIdenticalTopK(const AugmentedGraph& augmented,
                         const ExplorationOptions& options,
                         ExplorationScratch* scratch,
                         const std::string& context) {
  SubgraphExplorer flat(augmented, options, scratch);
  const auto actual = flat.FindTopK();
  ReferenceExplorer reference(augmented, options);
  const auto expected = reference.FindTopK();

  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].cost, expected[i].cost) << context << " rank " << i;
    EXPECT_EQ(actual[i].StructureKey(), expected[i].StructureKey())
        << context << " rank " << i;
    EXPECT_EQ(actual[i].StructureHash(), expected[i].StructureHash())
        << context << " rank " << i;
  }
  // The exploration counters must agree too: both engines walk the same
  // cursor sequence.
  EXPECT_EQ(flat.stats().cursors_created, reference.stats().cursors_created)
      << context;
  EXPECT_EQ(flat.stats().cursors_popped, reference.stats().cursors_popped)
      << context;
  EXPECT_EQ(flat.stats().subgraphs_generated,
            reference.stats().subgraphs_generated)
      << context;
  EXPECT_EQ(flat.stats().subgraphs_deduplicated,
            reference.stats().subgraphs_deduplicated)
      << context;
}

/// Option matrix shared by the fixture tests.
std::vector<ExplorationOptions> OptionMatrix() {
  std::vector<ExplorationOptions> all;
  for (CostModel model : {CostModel::kPathLength, CostModel::kPopularity,
                          CostModel::kMatching}) {
    for (std::size_t k : {1u, 5u, 20u}) {
      for (bool prune : {true, false}) {
        ExplorationOptions options;
        options.k = k;
        options.cost_model = model;
        options.prune_paths_per_element = prune;
        all.push_back(options);
        options.tightened_bound = true;
        all.push_back(options);
      }
    }
  }
  return all;
}

TEST(ExplorationDifferentialTest, Figure1Fixture) {
  Pipeline p = FromDataset(grasp::testing::MakeFigure1Dataset());
  const AugmentedGraph augmented = Augment(p, {"2006", "cimiano", "aifb"});
  ExplorationScratch scratch;
  for (const ExplorationOptions& options : OptionMatrix()) {
    ExpectIdenticalTopK(augmented, options, &scratch,
                        StrFormat("fig1 k=%zu model=%d prune=%d", options.k,
                                  static_cast<int>(options.cost_model),
                                  options.prune_paths_per_element ? 1 : 0));
  }
}

TEST(ExplorationDifferentialTest, LubmFixture) {
  Pipeline p;
  datagen::LubmOptions options;
  options.num_universities = 1;
  options.departments_per_university = 2;
  datagen::GenerateLubm(options, &p.dictionary, &p.store);
  FinishPipeline(&p);
  ExplorationScratch scratch;
  for (const auto& keywords :
       std::vector<std::vector<std::string>>{{"publication", "professor"},
                                             {"course", "student", "name"},
                                             {"department"}}) {
    const AugmentedGraph augmented = Augment(p, keywords);
    for (const ExplorationOptions& explore : OptionMatrix()) {
      ExpectIdenticalTopK(
          augmented, explore, &scratch,
          StrFormat("lubm %s k=%zu model=%d", Join(keywords, "+").c_str(),
                    explore.k, static_cast<int>(explore.cost_model)));
    }
  }
}

// Checked-in fuzzing seed corpus (tests/corpus/): keyword-set shapes that
// randomized runs surfaced, replayed forever through both explorers.
TEST(ExplorationDifferentialTest, CorpusReplayFigure1) {
  Pipeline p = FromDataset(grasp::testing::MakeFigure1Dataset());
  ExplorationScratch scratch;
  for (const auto& keywords :
       grasp::testing::LoadKeywordCorpus("fig1_keyword_sets.txt")) {
    const AugmentedGraph augmented = AugmentCorpus(p, keywords);
    for (bool prune : {true, false}) {
      ExplorationOptions options;
      options.k = prune ? 5 : 20;
      options.prune_paths_per_element = prune;
      ExpectIdenticalTopK(
          augmented, options, &scratch,
          StrFormat("fig1 corpus %s prune=%d", Join(keywords, "+").c_str(),
                    prune ? 1 : 0));
    }
  }
}

TEST(ExplorationDifferentialTest, CorpusReplayRandomGraphs) {
  for (std::uint64_t seed : {std::uint64_t{101}, std::uint64_t{202}}) {
    auto dataset = grasp::testing::MakeRandomDataset(
        seed, /*num_classes=*/4, /*num_entities=*/14, /*num_relations=*/18,
        /*num_predicates=*/3, /*num_attributes=*/10, /*value_pool=*/4);
    Pipeline p = FromDataset(std::move(dataset));
    ExplorationScratch scratch;
    for (const auto& keywords :
         grasp::testing::LoadKeywordCorpus("generic_keyword_sets.txt")) {
      const AugmentedGraph augmented = AugmentCorpus(p, keywords);
      for (CostModel model : {CostModel::kPathLength, CostModel::kMatching}) {
        ExplorationOptions options;
        options.k = 8;
        options.cost_model = model;
        ExpectIdenticalTopK(
            augmented, options, &scratch,
            StrFormat("random seed=%llu corpus %s model=%d",
                      static_cast<unsigned long long>(seed),
                      Join(keywords, "+").c_str(),
                      static_cast<int>(model)));
      }
    }
  }
}

/// Seeded random TAP-style graphs (many classes, few instances) and random
/// keyword sets drawn from the generator vocabulary, with randomized
/// exploration options.
class RandomizedDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedDifferentialTest, TapStyleGraphs) {
  Rng rng(GetParam());
  Pipeline p;
  datagen::TapOptions tap;
  tap.seed = GetParam();
  tap.num_classes = 12 + rng.NextBelow(36);
  tap.instances_per_class = 2 + rng.NextBelow(3);
  datagen::GenerateTap(tap, &p.dictionary, &p.store);
  FinishPipeline(&p);

  std::vector<std::string> vocabulary = {"item",   "album", "team", "city",
                                         "player", "name",  "event"};
  ExplorationScratch scratch;
  for (int round = 0; round < 4; ++round) {
    rng.Shuffle(&vocabulary);
    const std::size_t m = 1 + rng.NextBelow(3);
    std::vector<std::string> keywords(vocabulary.begin(),
                                      vocabulary.begin() + m);
    const AugmentedGraph augmented = Augment(p, keywords);

    ExplorationOptions explore;
    explore.k = 1 + rng.NextBelow(12);
    explore.dmax = 4 + rng.NextBelow(8);
    explore.cost_model = static_cast<CostModel>(1 + rng.NextBelow(3));
    explore.prune_paths_per_element = rng.NextBernoulli(0.7);
    explore.tightened_bound = rng.NextBernoulli(0.5);
    ExpectIdenticalTopK(
        augmented, explore, &scratch,
        StrFormat("tap seed=%llu %s k=%zu dmax=%u model=%d",
                  static_cast<unsigned long long>(GetParam()),
                  Join(keywords, "+").c_str(), explore.k, explore.dmax,
                  static_cast<int>(explore.cost_model)));
  }
}

TEST_P(RandomizedDifferentialTest, RandomGraphs) {
  Rng rng(GetParam() * 7919 + 13);
  auto dataset = grasp::testing::MakeRandomDataset(
      GetParam(), /*num_classes=*/4, /*num_entities=*/14,
      /*num_relations=*/18, /*num_predicates=*/3, /*num_attributes=*/10,
      /*value_pool=*/4);
  Pipeline p = FromDataset(std::move(dataset));

  std::vector<std::string> vocabulary = {"class0", "class1", "class2",
                                         "class3", "rel0",   "rel1",
                                         "rel2",   "value0", "value1",
                                         "value2", "attr0",  "attr1"};
  ExplorationScratch scratch;
  for (int round = 0; round < 4; ++round) {
    rng.Shuffle(&vocabulary);
    const std::size_t m = 1 + rng.NextBelow(3);
    std::vector<std::string> keywords(vocabulary.begin(),
                                      vocabulary.begin() + m);
    const AugmentedGraph augmented = Augment(p, keywords);

    ExplorationOptions explore;
    explore.k = 1 + rng.NextBelow(8);
    explore.dmax = 3 + rng.NextBelow(8);
    explore.cost_model = static_cast<CostModel>(1 + rng.NextBelow(3));
    explore.prune_paths_per_element = rng.NextBernoulli(0.7);
    explore.tightened_bound = rng.NextBernoulli(0.5);
    explore.distance_pruning = rng.NextBernoulli(0.3);
    ExpectIdenticalTopK(
        augmented, explore, &scratch,
        StrFormat("random seed=%llu %s k=%zu dmax=%u model=%d",
                  static_cast<unsigned long long>(GetParam()),
                  Join(keywords, "+").c_str(), explore.k, explore.dmax,
                  static_cast<int>(explore.cost_model)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

}  // namespace
}  // namespace grasp::core
