#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/engine.h"
#include "test_util.h"

namespace grasp::core {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : dataset_(grasp::testing::MakeFigure1Dataset()),
        engine_(dataset_.store, dataset_.dictionary) {}

  rdf::TermId Iri(const std::string& local) {
    return dataset_.dictionary.InternIri(std::string(grasp::testing::kEx) +
                                         local);
  }
  rdf::TermId Lit(const std::string& text) {
    return dataset_.dictionary.InternLiteral(text);
  }

  /// The paper's Fig. 1c query, built by hand as the gold standard.
  query::ConjunctiveQuery GoldFig1Query() {
    query::ConjunctiveQuery q;
    const rdf::TermId type = engine_.data_graph().type_term();
    const query::VarId x = q.NewVariable(), y = q.NewVariable(),
                       z = q.NewVariable();
    q.AddAtom({type, query::QueryTerm::Variable(x),
               query::QueryTerm::Constant(Iri("Publication"))});
    q.AddAtom({Iri("year"), query::QueryTerm::Variable(x),
               query::QueryTerm::Constant(Lit("2006"))});
    q.AddAtom({Iri("author"), query::QueryTerm::Variable(x),
               query::QueryTerm::Variable(y)});
    q.AddAtom({type, query::QueryTerm::Variable(y),
               query::QueryTerm::Constant(Iri("Researcher"))});
    q.AddAtom({Iri("name"), query::QueryTerm::Variable(y),
               query::QueryTerm::Constant(Lit("P._Cimiano"))});
    q.AddAtom({Iri("worksAt"), query::QueryTerm::Variable(y),
               query::QueryTerm::Variable(z)});
    q.AddAtom({type, query::QueryTerm::Variable(z),
               query::QueryTerm::Constant(Iri("Institute"))});
    q.AddAtom({Iri("name"), query::QueryTerm::Variable(z),
               query::QueryTerm::Constant(Lit("AIFB"))});
    return q;
  }

  grasp::testing::Dataset dataset_;
  KeywordSearchEngine engine_;
};

TEST_F(EngineTest, RunningExampleProducesPaperQuery) {
  auto result = engine_.Search({"2006", "cimiano", "aifb"}, 5);
  ASSERT_FALSE(result.queries.empty());
  const query::ConjunctiveQuery gold = GoldFig1Query();
  // The paper's query must appear among the top results — and given the
  // unambiguous keywords, at rank 1.
  EXPECT_TRUE(Isomorphic(result.queries[0].query, gold))
      << "top query: "
      << result.queries[0].query.ToString(dataset_.dictionary);
}

TEST_F(EngineTest, AnswersOfTopQueryAreCorrect) {
  auto result = engine_.Search({"2006", "cimiano", "aifb"}, 1);
  ASSERT_FALSE(result.queries.empty());
  auto answers = engine_.Answers(result.queries[0].query, 10);
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->rows.empty());
  std::set<std::string> bound;
  for (const auto& row : answers->rows) {
    for (rdf::TermId t : row) {
      bound.insert(std::string(dataset_.dictionary.text(t)));
    }
  }
  EXPECT_TRUE(bound.count(std::string(grasp::testing::kEx) + "pub1") > 0);
  EXPECT_TRUE(bound.count(std::string(grasp::testing::kEx) + "re2") > 0);
  EXPECT_TRUE(bound.count(std::string(grasp::testing::kEx) + "inst1") > 0);
}

TEST_F(EngineTest, QueriesSortedAndDeduplicated) {
  auto result = engine_.Search({"name", "publication"}, 8);
  std::set<std::string> canonicals;
  for (std::size_t i = 0; i < result.queries.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(result.queries[i - 1].cost, result.queries[i].cost);
    }
    EXPECT_TRUE(
        canonicals.insert(result.queries[i].query.CanonicalString()).second)
        << "duplicate query at rank " << i;
  }
}

TEST_F(EngineTest, KLimitsResultCount) {
  auto many = engine_.Search({"name"}, 10);
  auto few = engine_.Search({"name"}, 2);
  EXPECT_LE(few.queries.size(), 2u);
  EXPECT_GE(many.queries.size(), few.queries.size());
}

TEST_F(EngineTest, SearchReportsTimingsAndStats) {
  auto result = engine_.Search({"2006", "cimiano"}, 3);
  EXPECT_GE(result.total_millis, 0.0);
  EXPECT_EQ(result.matches_per_keyword.size(), 2u);
  EXPECT_GT(result.exploration_stats.cursors_created, 0u);
}

TEST_F(EngineTest, UnmatchableKeywordGivesNoQueries) {
  auto result = engine_.Search({"qqqqqqq"}, 3);
  EXPECT_TRUE(result.queries.empty());
}

TEST_F(EngineTest, EmptyKeywordListGivesNoQueries) {
  auto result = engine_.Search({}, 3);
  EXPECT_TRUE(result.queries.empty());
}

TEST_F(EngineTest, FuzzyKeywordStillFindsQuery) {
  // Misspelled "cimano" must still lead to the Cimiano interpretation via
  // the syntactic similarity of the keyword index.
  auto result = engine_.Search({"cimano"}, 3);
  ASSERT_FALSE(result.queries.empty());
  bool mentions_cimiano = false;
  for (const auto& rq : result.queries) {
    if (rq.query.ToString(dataset_.dictionary).find("Cimiano") !=
        std::string::npos) {
      mentions_cimiano = true;
    }
  }
  EXPECT_TRUE(mentions_cimiano);
}

TEST_F(EngineTest, SynonymKeywordFindsClass) {
  // "paper" is not a label in the data; the thesaurus maps it to
  // Publication (a direct WordNet synonym).
  auto result = engine_.Search({"paper"}, 3);
  ASSERT_FALSE(result.queries.empty());
  bool mentions_publication = false;
  for (const auto& rq : result.queries) {
    if (rq.query.ToString(dataset_.dictionary).find("Publication") !=
        std::string::npos) {
      mentions_publication = true;
    }
  }
  EXPECT_TRUE(mentions_publication);
}

TEST_F(EngineTest, RelationKeywordMapsToPredicate) {
  auto result = engine_.Search({"author", "2006"}, 5);
  ASSERT_FALSE(result.queries.empty());
  bool has_author_atom = false;
  for (const auto& atom : result.queries[0].query.atoms()) {
    if (rdf::IriLocalName(dataset_.dictionary.text(atom.predicate)) ==
        "author") {
      has_author_atom = true;
    }
  }
  EXPECT_TRUE(has_author_atom);
}

TEST_F(EngineTest, ExplorationScratchReusedAcrossSearches) {
  // Steady state: the first Search sizes the engine-owned scratch; repeated
  // identical searches reuse every pooled allocation (no further growth).
  engine_.Search({"2006", "cimiano", "aifb"}, 5);
  const auto& scratch = engine_.exploration_scratch();
  const std::size_t grow_after_first = scratch.grow_events;
  EXPECT_EQ(scratch.queries_run, 1u);
  engine_.Search({"2006", "cimiano", "aifb"}, 5);
  engine_.Search({"2006", "cimiano"}, 3);  // smaller query: fits the pools
  EXPECT_EQ(scratch.queries_run, 3u);
  EXPECT_EQ(scratch.grow_events, grow_after_first);
}

TEST_F(EngineTest, IndexStatsPopulated) {
  const auto& stats = engine_.index_stats();
  EXPECT_GT(stats.keyword_index_bytes, 0u);
  EXPECT_GT(stats.summary_graph_bytes, 0u);
  EXPECT_EQ(stats.summary_nodes, 7u);
  EXPECT_GT(stats.keyword_elements, 0u);
  EXPECT_GE(stats.build_millis, 0.0);
}

TEST_F(EngineTest, CostModelsProduceDifferentRankings) {
  KeywordSearchEngine::Options c1_options;
  c1_options.exploration.cost_model = CostModel::kPathLength;
  KeywordSearchEngine c1_engine(dataset_.store, dataset_.dictionary,
                                c1_options);
  auto c1 = c1_engine.Search({"name", "institute"}, 5);
  auto c3 = engine_.Search({"name", "institute"}, 5);
  ASSERT_FALSE(c1.queries.empty());
  ASSERT_FALSE(c3.queries.empty());
  // Both find interpretations; the cost values differ between models.
  EXPECT_NE(c1.queries[0].cost, c3.queries[0].cost);
}

TEST_F(EngineTest, QueryCostMatchesSubgraphCost) {
  auto result = engine_.Search({"2006", "cimiano"}, 4);
  for (const auto& rq : result.queries) {
    EXPECT_DOUBLE_EQ(rq.cost, rq.subgraph.cost);
    EXPECT_DOUBLE_EQ(rq.query.cost(), rq.subgraph.cost);
  }
}

TEST_F(EngineTest, SparqlRenderingOfTopQueryParses) {
  auto result = engine_.Search({"2006", "cimiano", "aifb"}, 1);
  ASSERT_FALSE(result.queries.empty());
  const std::string sparql =
      result.queries[0].query.ToSparql(dataset_.dictionary);
  EXPECT_NE(sparql.find("SELECT"), std::string::npos);
  EXPECT_NE(sparql.find("WHERE {"), std::string::npos);
  EXPECT_NE(sparql.find("\"2006\""), std::string::npos);
}

}  // namespace
}  // namespace grasp::core
