// Fault-injection tests: the failpoint registry itself (arm/fire budgets,
// hit counters, environment arming) and the production failure paths it
// exists to exercise — transient snapshot-open failures healed by the
// engine's bounded retry+backoff, hard failures surfaced as Status, and
// FreeListPool exhaustion degrading to counted transient allocations with
// bit-identical query results.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/free_list_pool.h"
#include "core/engine.h"
#include "test_util.h"

namespace grasp {
namespace {

using grasp::core::KeywordSearchEngine;

/// Every test starts and ends with nothing armed; a leaked arming would
/// poison unrelated suites through the global registry.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override {
    failpoint::DisarmAll();
    ::unsetenv("GRASP_FAILPOINTS");
  }
};

TEST_F(FailpointTest, UnarmedSitesNeverFire) {
  EXPECT_FALSE(failpoint::ShouldFail("nonexistent.site"));
  EXPECT_FALSE(failpoint::ShouldFail("nonexistent.site"));
  // The unarmed fast path skips the registry, so nothing was counted.
  EXPECT_EQ(failpoint::HitCount("nonexistent.site"), 0u);
}

TEST_F(FailpointTest, ArmedBudgetFiresExactlyNTimes) {
  failpoint::Arm("test.site", 2);
  EXPECT_TRUE(failpoint::ShouldFail("test.site"));
  EXPECT_TRUE(failpoint::ShouldFail("test.site"));
  EXPECT_FALSE(failpoint::ShouldFail("test.site"));
  EXPECT_FALSE(failpoint::ShouldFail("test.site"));
  // Only the armed hits were counted: once the budget hit zero the
  // ShouldFail fast path stopped touching the registry.
  EXPECT_EQ(failpoint::HitCount("test.site"), 2u);
}

TEST_F(FailpointTest, AlwaysFiresUntilDisarmed) {
  failpoint::Arm("test.always", failpoint::kAlways);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(failpoint::ShouldFail("test.always"));
  }
  failpoint::Disarm("test.always");
  EXPECT_FALSE(failpoint::ShouldFail("test.always"));
}

TEST_F(FailpointTest, ArmZeroDisarms) {
  failpoint::Arm("test.zero", failpoint::kAlways);
  failpoint::Arm("test.zero", 0);
  EXPECT_FALSE(failpoint::ShouldFail("test.zero"));
}

TEST_F(FailpointTest, EnvironmentArmsSites) {
  ::setenv("GRASP_FAILPOINTS", "env.counted=2,env.forever=always", 1);
  failpoint::ReloadFromEnv();
  EXPECT_TRUE(failpoint::ShouldFail("env.counted"));
  EXPECT_TRUE(failpoint::ShouldFail("env.counted"));
  EXPECT_FALSE(failpoint::ShouldFail("env.counted"));
  EXPECT_TRUE(failpoint::ShouldFail("env.forever"));
  EXPECT_TRUE(failpoint::ShouldFail("env.forever"));
  // Reload with the variable gone clears all env arming.
  ::unsetenv("GRASP_FAILPOINTS");
  failpoint::ReloadFromEnv();
  EXPECT_FALSE(failpoint::ShouldFail("env.forever"));
}

// ---------------------------------------------------------------------------
// Production failure paths.

class SnapshotRetryTest : public FailpointTest {
 protected:
  SnapshotRetryTest() : dataset_(grasp::testing::MakeFigure1Dataset()) {}

  void SetUp() override {
    FailpointTest::SetUp();
    path_ = ::testing::TempDir() + "grasp_failpoint_retry.snap";
    KeywordSearchEngine cold(dataset_.store, dataset_.dictionary);
    const Status saved = cold.SaveIndex(path_);
    ASSERT_TRUE(saved.ok()) << saved.ToString();
  }

  void TearDown() override {
    std::remove(path_.c_str());
    FailpointTest::TearDown();
  }

  static KeywordSearchEngine::Options RetryOptions(int attempts) {
    KeywordSearchEngine::Options options;
    options.snapshot_open_attempts = attempts;
    options.snapshot_open_backoff_millis = 0.1;  // keep the test fast
    return options;
  }

  grasp::testing::Dataset dataset_;
  std::string path_;
};

TEST_F(SnapshotRetryTest, TransientOpenFailuresAreRetriedAway) {
  // Two injected failures, three attempts: the third succeeds and the
  // caller never sees the transient faults.
  failpoint::Arm("snapshot.open", 2);
  auto opened = KeywordSearchEngine::Open(path_, RetryOptions(3));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  // Both injected failures were consumed; the successful third attempt
  // took the unarmed fast path and is not registered as a hit.
  EXPECT_EQ(failpoint::HitCount("snapshot.open"), 2u);

  const auto result = (*opened)->Search({"publication", "aifb"}, 5);
  EXPECT_TRUE(result.status.ok());
  EXPECT_FALSE(result.queries.empty());
}

TEST_F(SnapshotRetryTest, TransientMmapFailuresAreRetriedAway) {
  failpoint::Arm("snapshot.mmap", 1);
  auto opened = KeywordSearchEngine::Open(path_, RetryOptions(2));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
}

TEST_F(SnapshotRetryTest, PersistentFailureExhaustsRetriesWithIoError) {
  failpoint::Arm("snapshot.open", failpoint::kAlways);
  auto opened = KeywordSearchEngine::Open(path_, RetryOptions(3));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIoError);
  // Exactly `attempts` tries: bounded, not an infinite retry loop.
  EXPECT_EQ(failpoint::HitCount("snapshot.open"), 3u);
}

TEST_F(SnapshotRetryTest, RetryBudgetOfOneMeansNoRetry) {
  failpoint::Arm("snapshot.open", 1);
  auto opened = KeywordSearchEngine::Open(path_, RetryOptions(1));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(failpoint::HitCount("snapshot.open"), 1u);
}

TEST_F(FailpointTest, PoolExhaustionDegradesToCountedTransients) {
  grasp::testing::Dataset dataset = grasp::testing::MakeFigure1Dataset();
  KeywordSearchEngine engine(dataset.store, dataset.dictionary);
  const std::vector<std::string> keywords = {"publication", "aifb"};

  const auto baseline = engine.Search(keywords, 5);
  ASSERT_TRUE(baseline.status.ok());
  ASSERT_FALSE(baseline.queries.empty());
  const auto before = engine.index_stats();

  // Every scratch/overlay acquisition overflows to a transient allocation:
  // the degraded path must change performance only, never results.
  failpoint::Arm("pool.acquire", failpoint::kAlways);
  const auto starved = engine.Search(keywords, 5);
  failpoint::DisarmAll();

  ASSERT_TRUE(starved.status.ok());
  ASSERT_EQ(starved.queries.size(), baseline.queries.size());
  for (std::size_t i = 0; i < baseline.queries.size(); ++i) {
    EXPECT_EQ(starved.queries[i].cost, baseline.queries[i].cost) << i;
    EXPECT_EQ(starved.queries[i].query.CanonicalString(),
              baseline.queries[i].query.CanonicalString())
        << i;
  }

  const auto after = engine.index_stats();
  EXPECT_GT(after.scratch_pool_overflows + after.overlay_pool_overflows,
            before.scratch_pool_overflows + before.overlay_pool_overflows);
}

TEST_F(FailpointTest, FreeListPoolCountsInjectedOverflows) {
  FreeListPool<int> pool(4);
  failpoint::Arm("pool.acquire", 2);
  auto make = [] { return std::make_unique<int>(7); };

  auto t1 = pool.Acquire(make);  // injected overflow
  auto t2 = pool.Acquire(make);  // injected overflow
  auto p1 = pool.Acquire(make);  // budget spent: pooled again
  EXPECT_EQ(t1.slot, FreeListPool<int>::kTransient);
  EXPECT_EQ(t2.slot, FreeListPool<int>::kTransient);
  EXPECT_NE(p1.slot, FreeListPool<int>::kTransient);
  EXPECT_EQ(pool.overflow_count(), 2u);

  pool.Release(t1);
  pool.Release(t2);
  pool.Release(p1);
  // Transient releases destroyed their objects; the pooled slot survives.
  EXPECT_EQ(pool.created(), 1u);
}

}  // namespace
}  // namespace grasp
