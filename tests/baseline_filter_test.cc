// Baseline conformance under filtered edge views: backward search,
// bidirectional search and BLINKS traversing word-scanned FilteredIds
// adjacency (EdgeFilterMode::kFilteredView) must produce answer trees
// byte-identical to the inline per-edge-branch formulation
// (EdgeFilterMode::kInlineCheck) for every filter shape, and an all-ones
// filter must reproduce the unfiltered legacy path exactly. Runs on Fig. 1
// and a LUBM slice under the regular and sanitizer CI jobs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/backward_search.h"
#include "baseline/bidirectional_search.h"
#include "baseline/blinks.h"
#include "baseline/keyword_map.h"
#include "datagen/lubm_gen.h"
#include "graph/edge_filter.h"
#include "rdf/data_graph.h"
#include "test_util.h"

namespace grasp::baseline {
namespace {

using graph::EdgeFilter;

struct Fixture {
  grasp::testing::Dataset dataset;
  std::unique_ptr<rdf::DataGraph> graph;
  std::unique_ptr<VertexKeywordMap> keyword_map;
};

Fixture MakeFixture(grasp::testing::Dataset dataset) {
  Fixture f;
  f.dataset = std::move(dataset);
  f.graph = std::make_unique<rdf::DataGraph>(
      rdf::DataGraph::Build(f.dataset.store, f.dataset.dictionary));
  f.keyword_map = std::make_unique<VertexKeywordMap>(*f.graph);
  return f;
}

Fixture Figure1Fixture() {
  return MakeFixture(grasp::testing::MakeFigure1Dataset());
}

Fixture LubmFixture() {
  grasp::testing::Dataset dataset;
  datagen::LubmOptions options;
  options.num_universities = 1;
  options.departments_per_university = 2;
  datagen::GenerateLubm(options, &dataset.dictionary, &dataset.store);
  dataset.store.Finalize();
  return MakeFixture(std::move(dataset));
}

void ExpectSameAnswers(const BaselineResult& a, const BaselineResult& b,
                       const std::string& context) {
  EXPECT_EQ(a.nodes_visited, b.nodes_visited) << context;
  ASSERT_EQ(a.answers.size(), b.answers.size()) << context;
  for (std::size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i].root, b.answers[i].root) << context << " #" << i;
    EXPECT_EQ(a.answers[i].score, b.answers[i].score) << context << " #" << i;
    EXPECT_EQ(a.answers[i].keyword_vertices, b.answers[i].keyword_vertices)
        << context << " #" << i;
    EXPECT_EQ(a.answers[i].distances, b.answers[i].distances)
        << context << " #" << i;
  }
}

/// The filter shapes every searcher is swept over; built per graph.
std::vector<std::pair<std::string, EdgeFilter>> FilterShapes(
    const rdf::DataGraph& graph) {
  std::vector<std::pair<std::string, EdgeFilter>> shapes;
  shapes.emplace_back(
      "all", EdgeFilter::MakeFull(static_cast<std::uint32_t>(graph.NumEdges())));
  shapes.emplace_back("relations",
                      graph.KindFilter(rdf::EdgeKindBit(rdf::EdgeKind::kRelation)));
  shapes.emplace_back(
      "relations+attributes",
      graph.KindFilter(rdf::EdgeKindBit(rdf::EdgeKind::kRelation) |
                       rdf::EdgeKindBit(rdf::EdgeKind::kAttribute)));
  shapes.emplace_back(
      "no-type",
      graph.KindFilter(rdf::EdgeKindBit(rdf::EdgeKind::kRelation) |
                       rdf::EdgeKindBit(rdf::EdgeKind::kAttribute) |
                       rdf::EdgeKindBit(rdf::EdgeKind::kSubclass)));
  return shapes;
}

void RunBackwardConformance(const Fixture& f,
                            const std::vector<std::string>& keywords,
                            const std::string& tag) {
  BackwardSearch search(*f.graph, *f.keyword_map);
  BaselineOptions unfiltered;
  unfiltered.k = 5;
  const BaselineResult legacy = search.Search(keywords, unfiltered);

  for (const auto& [name, filter] : FilterShapes(*f.graph)) {
    BaselineOptions view = unfiltered;
    view.edge_filter = &filter;
    view.filter_mode = EdgeFilterMode::kFilteredView;
    BaselineOptions inline_check = view;
    inline_check.filter_mode = EdgeFilterMode::kInlineCheck;
    const BaselineResult a = search.Search(keywords, view);
    const BaselineResult b = search.Search(keywords, inline_check);
    ExpectSameAnswers(a, b, tag + " backward " + name);
    if (name == "all") {
      ExpectSameAnswers(a, legacy, tag + " backward all-vs-legacy");
    }
  }
}

void RunBidirectionalConformance(const Fixture& f,
                                 const std::vector<std::string>& keywords,
                                 const std::string& tag) {
  BidirectionalSearch search(*f.graph, *f.keyword_map);
  BidirectionalSearch::Options unfiltered;
  unfiltered.k = 5;
  const BaselineResult legacy = search.Search(keywords, unfiltered);

  for (const auto& [name, filter] : FilterShapes(*f.graph)) {
    BidirectionalSearch::Options view = unfiltered;
    view.edge_filter = &filter;
    view.filter_mode = EdgeFilterMode::kFilteredView;
    BidirectionalSearch::Options inline_check = view;
    inline_check.filter_mode = EdgeFilterMode::kInlineCheck;
    const BaselineResult a = search.Search(keywords, view);
    const BaselineResult b = search.Search(keywords, inline_check);
    ExpectSameAnswers(a, b, tag + " bidirectional " + name);
    if (name == "all") {
      ExpectSameAnswers(a, legacy, tag + " bidirectional all-vs-legacy");
    }
  }
}

void RunBlinksConformance(const Fixture& f,
                          const std::vector<std::string>& keywords,
                          const std::string& tag) {
  BaselineOptions search_options;
  search_options.k = 5;

  BlinksIndex::BuildOptions unfiltered;
  unfiltered.num_blocks = 4;
  const BlinksIndex legacy_index(*f.graph, *f.keyword_map, unfiltered);
  const BaselineResult legacy = legacy_index.Search(keywords, search_options);

  for (const auto& [name, filter] : FilterShapes(*f.graph)) {
    BlinksIndex::BuildOptions view = unfiltered;
    view.edge_filter = &filter;
    view.filter_mode = EdgeFilterMode::kFilteredView;
    BlinksIndex::BuildOptions inline_check = view;
    inline_check.filter_mode = EdgeFilterMode::kInlineCheck;
    // The scope is part of the *index*: both the portal precomputation and
    // the search traverse the filtered view.
    const BlinksIndex view_index(*f.graph, *f.keyword_map, view);
    const BlinksIndex inline_index(*f.graph, *f.keyword_map, inline_check);
    const BaselineResult a = view_index.Search(keywords, search_options);
    const BaselineResult b = inline_index.Search(keywords, search_options);
    EXPECT_EQ(view_index.num_portals(), inline_index.num_portals())
        << tag << " blinks " << name;
    ExpectSameAnswers(a, b, tag + " blinks " + name);
    if (name == "all") {
      EXPECT_EQ(view_index.num_portals(), legacy_index.num_portals())
          << tag << " blinks all-vs-legacy portals";
      ExpectSameAnswers(a, legacy, tag + " blinks all-vs-legacy");
    }
  }
}

TEST(BaselineFilterTest, BackwardSearchConformance) {
  const Fixture fig1 = Figure1Fixture();
  RunBackwardConformance(fig1, {"cimiano", "aifb"}, "fig1");
  RunBackwardConformance(fig1, {"publication", "institute"}, "fig1");
  const Fixture lubm = LubmFixture();
  RunBackwardConformance(lubm, {"publication", "professor"}, "lubm");
}

TEST(BaselineFilterTest, BidirectionalSearchConformance) {
  const Fixture fig1 = Figure1Fixture();
  RunBidirectionalConformance(fig1, {"cimiano", "aifb"}, "fig1");
  RunBidirectionalConformance(fig1, {"publication", "institute"}, "fig1");
  const Fixture lubm = LubmFixture();
  RunBidirectionalConformance(lubm, {"publication", "professor"}, "lubm");
}

TEST(BaselineFilterTest, BlinksConformance) {
  const Fixture fig1 = Figure1Fixture();
  RunBlinksConformance(fig1, {"cimiano", "aifb"}, "fig1");
  const Fixture lubm = LubmFixture();
  RunBlinksConformance(lubm, {"publication", "professor"}, "lubm");
}

/// A filter that severs the only connection must make the answer set empty
/// rather than leak a masked edge into a path — the semantic guarantee.
TEST(BaselineFilterTest, SeveringFilterYieldsNoAnswers) {
  const Fixture f = Figure1Fixture();
  // Only subclass/type edges: keyword vertices (value literals) have no
  // in-scope incident edges, so no root can collect both groups.
  const EdgeFilter structural_only =
      f.graph->KindFilter(rdf::EdgeKindBit(rdf::EdgeKind::kType) |
                          rdf::EdgeKindBit(rdf::EdgeKind::kSubclass));
  BaselineOptions options;
  options.k = 5;
  options.edge_filter = &structural_only;

  BackwardSearch backward(*f.graph, *f.keyword_map);
  EXPECT_TRUE(backward.Search({"cimiano", "aifb"}, options).answers.empty());

  BidirectionalSearch::Options bi_options;
  bi_options.k = 5;
  bi_options.edge_filter = &structural_only;
  BidirectionalSearch bidirectional(*f.graph, *f.keyword_map);
  EXPECT_TRUE(
      bidirectional.Search({"cimiano", "aifb"}, bi_options).answers.empty());
}

}  // namespace
}  // namespace grasp::baseline
