#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace grasp {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, OkCodeDropsMessage) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, OkStatusIsNormalizedToInternalError) {
  Result<int> r{Status::Ok()};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailingHelper() { return Status::ParseError("inner"); }

Status UsesReturnIfError() {
  GRASP_RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kParseError);
}

Result<int> GiveInt(bool ok) {
  if (ok) return 7;
  return Status::NotFound("no int");
}

Status UsesAssignOrReturn(bool ok, int* out) {
  GRASP_ASSIGN_OR_RETURN(*out, GiveInt(ok));
  return Status::Ok();
}

TEST(StatusMacrosTest, AssignOrReturnAssigns) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(true, &out).ok());
  EXPECT_EQ(out, 7);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_EQ(UsesAssignOrReturn(false, &out).code(), StatusCode::kNotFound);
  EXPECT_EQ(out, 0);
}

// ----------------------------------------------------------- StringUtil --

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinRoundTrips) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringUtilTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLower("AbC123xYz"), "abc123xyz");
}

TEST(StringUtilTest, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n"), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "hello!"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("lo", "hello"));
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringUtilTest, HumanBytesScales) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MB");
}

// ------------------------------------------------------------------ Rng --

TEST(RngTest, DeterministicBySeed) {
  Rng a(7), b(7), c(8);
  bool all_equal = true, any_diff_seed_diff = false;
  for (int i = 0; i < 100; ++i) {
    std::uint64_t va = a.Next(), vb = b.Next(), vc = c.Next();
    all_equal = all_equal && (va == vb);
    any_diff_seed_diff = any_diff_seed_diff || (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_diff);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    std::int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(6);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(ZipfTest, HeavierHeadThanTail) {
  Rng rng(9);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], 0);
}

TEST(ZipfTest, SampleWithinBounds) {
  Rng rng(10);
  ZipfSampler zipf(7, 1.2);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(&rng), 7u);
}

TEST(ZipfTest, UniformWhenExponentZero) {
  Rng rng(11);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) {
    EXPECT_GT(c, 8000);
    EXPECT_LT(c, 12000);
  }
}

// ----------------------------------------------------------------- Hash --

TEST(HashTest, HashValuesDiffersOnOrder) {
  EXPECT_NE(HashValues(1, 2), HashValues(2, 1));
}

TEST(HashTest, PairHashUsableInSets) {
  PairHash h;
  EXPECT_NE(h(std::make_pair(1, 2)), h(std::make_pair(1, 3)));
}

// ---------------------------------------------------------------- Timer --

TEST(TimerTest, MonotoneAndResettable) {
  WallTimer t;
  double first = t.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(t.ElapsedSeconds(), first);
  t.Reset();
  EXPECT_GE(t.ElapsedMicros(), 0);
}

}  // namespace
}  // namespace grasp
