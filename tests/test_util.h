#ifndef GRASP_TESTS_TEST_UTIL_H_
#define GRASP_TESTS_TEST_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/filter_op.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "keyword/keyword_index.h"
#include "rdf/dictionary.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"
#include "text/inverted_index.h"

namespace grasp::testing {

/// Owning bundle of a parsed dataset (dictionary + finalized store).
struct Dataset {
  rdf::Dictionary dictionary;
  rdf::TripleStore store;
};

inline constexpr char kEx[] = "http://example.org/";

/// Parses inline N-Triples written with the http://example.org/ namespace
/// shorthand: tokens without angle brackets are expanded, quoted tokens stay
/// literals. Each line is "subj pred obj".
inline Dataset MakeDataset(const std::vector<std::string>& lines) {
  Dataset d;
  std::string nt;
  for (const std::string& line : lines) {
    std::vector<std::string> parts = SplitWhitespace(line);
    if (parts.size() != 3) continue;
    for (std::size_t i = 0; i < 3; ++i) {
      const std::string& tok = parts[i];
      if (!tok.empty() && tok.front() == '"') {
        nt += tok;
      } else if (tok == "a" && i == 1) {  // Turtle's "a" only as predicate
        nt += "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>";
      } else if (tok == "sc") {
        nt += "<http://www.w3.org/2000/01/rdf-schema#subClassOf>";
      } else {
        nt += "<" + std::string(kEx) + tok + ">";
      }
      nt += ' ';
    }
    nt += ".\n";
  }
  auto status = rdf::ParseNTriplesString(nt, &d.dictionary, &d.store);
  if (!status.ok()) {
    // Surface parse problems loudly in tests.
    std::fprintf(stderr, "MakeDataset parse error: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  d.store.Finalize();
  return d;
}

/// The running example of the paper (Fig. 1a): projects, publications,
/// researchers, institutes. Quoted literals keep multi-word values intact by
/// using underscores (the analyzer splits them back into words).
inline Dataset MakeFigure1Dataset() {
  return MakeDataset({
      R"(pro2 a Project)",
      R"(pro1 a Project)",
      R"(pro1 name "X-Media")",
      R"(pub1 a Publication)",
      R"(pub1 author re1)",
      R"(pub1 author re2)",
      R"(pub1 year "2006")",
      R"(pub1 hasProject pro1)",
      R"(pub2 a Publication)",
      R"(re1 a Researcher)",
      R"(re1 name "Thanh_Tran")",
      R"(re1 worksAt inst1)",
      R"(re2 a Researcher)",
      R"(re2 name "P._Cimiano")",
      R"(re2 worksAt inst1)",
      R"(inst1 a Institute)",
      R"(inst1 name "AIFB")",
      R"(inst2 a Institute)",
      R"(Institute sc Agent)",
      R"(Researcher sc Person)",
      R"(Person sc Agent)",
      R"(Agent sc Thing)",
  });
}

/// Generates a small random typed RDF dataset for property tests:
/// `num_classes` classes, `num_entities` entities (each typed with 1 class),
/// random relation edges over `num_predicates` labels, and random attributes
/// from a small value pool. Deterministic in `seed`.
inline Dataset MakeRandomDataset(std::uint64_t seed, std::size_t num_classes,
                                 std::size_t num_entities,
                                 std::size_t num_relations,
                                 std::size_t num_predicates,
                                 std::size_t num_attributes,
                                 std::size_t value_pool) {
  Rng rng(seed);
  std::vector<std::string> lines;
  for (std::size_t e = 0; e < num_entities; ++e) {
    lines.push_back(StrFormat("ent%zu a Class%llu", e,
                              static_cast<unsigned long long>(
                                  rng.NextBelow(num_classes))));
  }
  for (std::size_t r = 0; r < num_relations; ++r) {
    lines.push_back(StrFormat(
        "ent%llu rel%llu ent%llu",
        static_cast<unsigned long long>(rng.NextBelow(num_entities)),
        static_cast<unsigned long long>(rng.NextBelow(num_predicates)),
        static_cast<unsigned long long>(rng.NextBelow(num_entities))));
  }
  for (std::size_t a = 0; a < num_attributes; ++a) {
    lines.push_back(StrFormat(
        "ent%llu attr%llu \"value%llu\"",
        static_cast<unsigned long long>(rng.NextBelow(num_entities)),
        static_cast<unsigned long long>(rng.NextBelow(num_predicates)),
        static_cast<unsigned long long>(rng.NextBelow(value_pool))));
  }
  return MakeDataset(lines);
}

/// Resolves one corpus keyword set to per-keyword match lists exactly like
/// the engine's keyword step: operator keywords (">2000") go through the
/// filter extension, everything else through the inverted index.
inline std::vector<std::vector<keyword::KeywordMatch>> CorpusLookup(
    const keyword::KeywordIndex& index,
    const std::vector<std::string>& keywords, std::size_t max_results) {
  text::InvertedIndex::SearchOptions options;
  options.max_results = max_results;
  std::vector<std::vector<keyword::KeywordMatch>> matches;
  for (const std::string& kw : keywords) {
    if (const auto filter = ParseFilterKeyword(kw)) {
      auto match = index.LookupFilter(*filter);
      matches.push_back(match.has_value()
                            ? std::vector<keyword::KeywordMatch>{*match}
                            : std::vector<keyword::KeywordMatch>{});
    } else {
      matches.push_back(index.Lookup(kw, options));
    }
  }
  return matches;
}

/// Loads a keyword-set seed corpus (see tests/corpus/README.md): one
/// whitespace-separated keyword set per line, '#' starts a comment. Aborts
/// loudly on a missing or empty file — a silently skipped corpus would
/// look like passing coverage.
inline std::vector<std::vector<std::string>> LoadKeywordCorpus(
    const std::string& filename) {
#ifndef GRASP_TEST_CORPUS_DIR
#define GRASP_TEST_CORPUS_DIR "tests/corpus"
#endif
  const std::string path = std::string(GRASP_TEST_CORPUS_DIR) + "/" + filename;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open corpus %s\n", path.c_str());
    std::abort();
  }
  std::vector<std::vector<std::string>> sets;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.front() == '#') continue;
    std::vector<std::string> keywords = SplitWhitespace(line);
    if (!keywords.empty()) sets.push_back(std::move(keywords));
  }
  if (sets.empty()) {
    std::fprintf(stderr, "corpus %s has no keyword sets\n", path.c_str());
    std::abort();
  }
  return sets;
}

}  // namespace grasp::testing

#endif  // GRASP_TESTS_TEST_UTIL_H_
