// End-to-end tests for the epoll HTTP front-end, over real sockets against
// a real engine: request/response happy paths, keep-alive and pipelining,
// malformed-input rejection, slow-loris 408, overload 429 + Retry-After,
// client-disconnect -> query cancellation, X-Deadline-Ms propagation, the
// net.read failpoint, and the graceful drain (in-flight answered, new
// connections refused, loop exits). The TSan CI leg runs this suite (the
// filter matches "serve"): the event loop, the lane workers, and the
// completion queue race here under instrumentation.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/engine.h"
#include "net/http_server.h"
#include "net/socket.h"
#include "serve/admission.h"
#include "test_util.h"

namespace grasp::net {
namespace {

using grasp::core::KeywordSearchEngine;
using grasp::serve::QueryServer;

class NetServerTest : public ::testing::Test {
 protected:
  NetServerTest()
      : dataset_(grasp::testing::MakeFigure1Dataset()),
        engine_(dataset_.store, dataset_.dictionary,
                EngineOptions(&registry_)) {
    IgnoreSigpipe();
  }

  /// The engine carries the shared registry; the QueryServer and HttpServer
  /// fall back to it, so every tier lands in one /metrics exposition —
  /// mirroring how grasp_serve wires production.
  static KeywordSearchEngine::Options EngineOptions(
      grasp::metrics::Registry* registry) {
    KeywordSearchEngine::Options options;
    options.metrics = registry;
    return options;
  }

  ~NetServerTest() override {
    if (server_ != nullptr) {
      server_->Stop();
      server_->Join();
    }
    failpoint::DisarmAll();
  }

  void StartServer(QueryServer::Options serve_options = {},
                   HttpServer::Options http_options = {}) {
    query_server_ = std::make_unique<QueryServer>(engine_, serve_options);
    server_ = std::make_unique<HttpServer>(query_server_.get(), http_options);
    const Status status = server_->Start();
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  OwnedFd Connect() {
    auto result = ConnectTcp("127.0.0.1", server_->port());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    OwnedFd fd = std::move(result).value();
    timeval timeout{5, 0};  // no test read should ever block forever
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    return fd;
  }

  static bool SendAll(int fd, std::string_view data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const std::ptrdiff_t n =
          WriteRetry(fd, data.data() + off, data.size() - off);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads exactly one framed response off a (possibly keep-alive) socket.
  /// The server may flush pipelined responses back-to-back, so one read can
  /// slurp bytes of the NEXT response too; those go into `carry` and are
  /// consumed first on the next call instead of being dropped.
  static std::string ReadResponse(int fd, std::string* carry = nullptr) {
    std::string data = carry == nullptr ? std::string() : std::move(*carry);
    if (carry != nullptr) carry->clear();
    char buf[4096];
    std::size_t header_end = data.find("\r\n\r\n");
    while (header_end == std::string::npos) {
      const std::ptrdiff_t n = ReadRetry(fd, buf, sizeof(buf));
      if (n <= 0) return data;  // EOF or timeout: return what we have
      data.append(buf, static_cast<std::size_t>(n));
      header_end = data.find("\r\n\r\n");
    }
    std::size_t content_length = 0;
    const std::size_t cl = data.find("Content-Length: ");
    if (cl != std::string::npos && cl < header_end) {
      content_length = static_cast<std::size_t>(
          std::atol(data.c_str() + cl + sizeof("Content-Length: ") - 1));
    }
    const std::size_t want = header_end + 4 + content_length;
    while (data.size() < want) {
      const std::ptrdiff_t n = ReadRetry(fd, buf, sizeof(buf));
      if (n <= 0) break;
      data.append(buf, static_cast<std::size_t>(n));
    }
    if (carry != nullptr && data.size() > want) *carry = data.substr(want);
    return data.substr(0, want);
  }

  /// One-shot exchange on a fresh connection.
  std::string Exchange(const std::string& request) {
    OwnedFd fd = Connect();
    if (!SendAll(fd.get(), request)) return "";
    return ReadResponse(fd.get());
  }

  static int StatusOf(const std::string& response) {
    if (response.size() < 12 || response.compare(0, 5, "HTTP/") != 0) return 0;
    return std::atoi(response.c_str() + 9);
  }

  /// Spins (bounded) until `predicate` holds — for counters the loop thread
  /// updates asynchronously.
  template <typename Predicate>
  static bool WaitFor(Predicate predicate) {
    for (int i = 0; i < 200; ++i) {
      if (predicate()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return predicate();
  }

  grasp::metrics::Registry registry_;  // must outlive engine_
  grasp::testing::Dataset dataset_;
  KeywordSearchEngine engine_;
  std::unique_ptr<QueryServer> query_server_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(NetServerTest, HealthzAndSearchServeOverTheWire) {
  StartServer();
  EXPECT_EQ(StatusOf(Exchange("GET /healthz HTTP/1.1\r\n\r\n")), 200);

  const std::string response = Exchange(
      "GET /search?q=publication+aifb&k=3 HTTP/1.1\r\nConnection: close\r\n"
      "\r\n");
  EXPECT_EQ(StatusOf(response), 200);
  EXPECT_NE(response.find("\"status\":\"OK\""), std::string::npos);
  EXPECT_NE(response.find("\"results\":[{"), std::string::npos) << response;
  EXPECT_NE(response.find("\"degraded\":false"), std::string::npos);
}

TEST_F(NetServerTest, KeepAliveServesSequentialAndPipelinedRequests) {
  StartServer();
  OwnedFd fd = Connect();
  std::string carry;

  // Sequential on one connection.
  ASSERT_TRUE(SendAll(fd.get(), "GET /healthz HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(StatusOf(ReadResponse(fd.get(), &carry)), 200);
  ASSERT_TRUE(
      SendAll(fd.get(), "GET /search?q=publication HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(StatusOf(ReadResponse(fd.get(), &carry)), 200);

  // Pipelined in one write: both must be answered, in order. The second
  // request sits in the user-space carry buffer while the first runs —
  // invisible to epoll, which is exactly the path this pins.
  ASSERT_TRUE(SendAll(fd.get(),
                      "GET /search?q=aifb HTTP/1.1\r\n\r\n"
                      "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"));
  EXPECT_EQ(StatusOf(ReadResponse(fd.get(), &carry)), 200);
  const std::string last = ReadResponse(fd.get(), &carry);
  EXPECT_EQ(StatusOf(last), 200);
  EXPECT_NE(last.find("ok"), std::string::npos);
}

TEST_F(NetServerTest, MalformedInputsRejectWithDefiniteStatuses) {
  StartServer();
  EXPECT_EQ(StatusOf(Exchange("\x01garbage\r\n\r\n")), 400);
  EXPECT_EQ(StatusOf(Exchange("GET / HTTP/2.0\r\n\r\n")), 505);
  EXPECT_EQ(StatusOf(Exchange(
                "POST /search HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")),
            501);
  EXPECT_EQ(StatusOf(Exchange("POST /search HTTP/1.1\r\n"
                              "Content-Length: 99999999\r\n\r\n")),
            413);
  EXPECT_EQ(StatusOf(Exchange("GET /nope HTTP/1.1\r\n\r\n")), 404);
  const std::string put = Exchange("PUT /search HTTP/1.1\r\n\r\n");
  EXPECT_EQ(StatusOf(put), 405);
  EXPECT_NE(put.find("Allow: GET, POST"), std::string::npos);
  EXPECT_EQ(StatusOf(Exchange("GET /search HTTP/1.1\r\n\r\n")), 400)
      << "no keywords";
}

TEST_F(NetServerTest, SlowLorisTimesOutWith408) {
  HttpServer::Options http_options;
  http_options.read_timeout_millis = 150.0;
  http_options.idle_timeout_millis = 60'000.0;  // idle is NOT the clock here
  StartServer({}, http_options);

  OwnedFd fd = Connect();
  // Start a request but never finish it; trickle to prove the deadline is
  // armed at the first byte and not refreshed per byte.
  ASSERT_TRUE(SendAll(fd.get(), "GET /healthz HT"));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  ASSERT_TRUE(SendAll(fd.get(), "TP/1."));
  const std::string response = ReadResponse(fd.get());
  EXPECT_EQ(StatusOf(response), 408) << response;

  const HttpServer::Stats stats = server_->stats();
  EXPECT_EQ(stats.responses_408, 1u);
}

TEST_F(NetServerTest, OverloadSheds429WithRetryAfterHint) {
  // Zero deep workers: the first /search is admitted and parks forever,
  // every subsequent one overflows the capacity-1 queue deterministically.
  QueryServer::Options serve_options;
  serve_options.fast_workers = 0;
  serve_options.deep_workers = 0;
  serve_options.queue_capacity = 1;
  StartServer(serve_options);

  OwnedFd parked = Connect();
  ASSERT_TRUE(
      SendAll(parked.get(), "GET /search?q=publication HTTP/1.1\r\n\r\n"));
  ASSERT_TRUE(WaitFor([this] { return query_server_->stats().admitted >= 1; }));

  const std::string shed = Exchange(
      "GET /search?q=aifb HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(StatusOf(shed), 429);
  EXPECT_NE(shed.find("Retry-After: "), std::string::npos) << shed;
  EXPECT_NE(shed.find("X-Retry-After-Ms: "), std::string::npos);
  EXPECT_NE(shed.find("\"retry_after_ms\":"), std::string::npos);
  // The parked request resolves at teardown: Stop() shuts the QueryServer
  // down, which fails it with kCancelled; nothing leaks or hangs.
}

TEST_F(NetServerTest, ClientDisconnectCancelsTheInflightQuery) {
  QueryServer::Options serve_options;
  serve_options.fast_workers = 0;
  serve_options.deep_workers = 0;  // admitted queries never start running
  serve_options.queue_capacity = 4;
  StartServer(serve_options);

  {
    OwnedFd fd = Connect();
    ASSERT_TRUE(
        SendAll(fd.get(), "GET /search?q=publication HTTP/1.1\r\n\r\n"));
    ASSERT_TRUE(
        WaitFor([this] { return query_server_->stats().admitted >= 1; }));
  }  // closed with the query still queued: EPOLLRDHUP -> RequestCancel

  ASSERT_TRUE(WaitFor(
      [this] { return server_->stats().disconnect_cancels >= 1; }));
  // The cancelled query's completion (kCancelled, fired at shutdown or by a
  // worker) finds no connection and is dropped, not delivered or leaked.
  server_->RequestDrain();
  server_->Join();
  EXPECT_GE(server_->stats().dropped_completions, 1u);
}

TEST_F(NetServerTest, DeadlineHeaderPropagatesIntoQueryControl) {
  QueryServer::Options serve_options;
  serve_options.deep_workers = 1;
  StartServer(serve_options);

  // A microscopic deadline expires while queued: kDeadlineExceeded -> 504.
  const std::string response = Exchange(
      "GET /search?q=publication HTTP/1.1\r\nX-Deadline-Ms: 0.001\r\n"
      "Connection: close\r\n\r\n");
  EXPECT_EQ(StatusOf(response), 504) << response;
  EXPECT_NE(response.find("DEADLINE_EXCEEDED"), std::string::npos);
  EXPECT_EQ(query_server_->stats().expired_in_queue, 1u);

  // A sane deadline serves normally.
  EXPECT_EQ(StatusOf(Exchange(
                "GET /search?q=publication HTTP/1.1\r\nX-Deadline-Ms: 5000\r\n"
                "Connection: close\r\n\r\n")),
            200);
}

TEST_F(NetServerTest, ReadFailpointClosesTheConnectionNotTheServer) {
  StartServer();
  failpoint::Arm("net.read", 1);
  {
    OwnedFd fd = Connect();
    SendAll(fd.get(), "GET /healthz HTTP/1.1\r\n\r\n");
    // The injected read fault kills this connection without a response.
    const std::string response = ReadResponse(fd.get());
    EXPECT_TRUE(response.empty()) << response;
  }
  failpoint::DisarmAll();
  ASSERT_TRUE(WaitFor([this] { return server_->stats().io_error_closes >= 1; }));
  // The server itself is unharmed.
  EXPECT_EQ(StatusOf(Exchange("GET /healthz HTTP/1.1\r\n\r\n")), 200);
}

TEST_F(NetServerTest, GracefulDrainAnswersInflightAndRefusesNew) {
  QueryServer::Options serve_options;
  serve_options.deep_workers = 1;
  StartServer(serve_options);

  // Park a request mid-read (header incomplete) and submit a live one, then
  // drain: the live one must be answered, the mid-read one must get a
  // definite response (503: it arrived after the drain began), and new
  // connections must be refused.
  OwnedFd live = Connect();
  ASSERT_TRUE(
      SendAll(live.get(), "GET /search?q=publication HTTP/1.1\r\n\r\n"));
  OwnedFd midread = Connect();
  ASSERT_TRUE(SendAll(midread.get(), "GET /search?q=aifb HTT"));
  // Both connects can still be sitting in the kernel accept queue (closing
  // the listener would RST them); the drain scenario under test starts once
  // the server owns the connections.
  ASSERT_TRUE(WaitFor([this] { return server_->stats().accepted >= 2; }));

  server_->RequestDrain();
  // The drain begins on the loop thread; wait for it to take effect before
  // completing the parked request (BeginDrain picks up its partial bytes and
  // keeps it alive as mid-request rather than idle-closing it).
  ASSERT_TRUE(WaitFor([this] { return server_->draining(); }));

  ASSERT_TRUE(SendAll(midread.get(), "P/1.1\r\n\r\n"));
  const std::string live_response = ReadResponse(live.get());
  // Already-submitted work finishes (200) or fails explicitly at shutdown
  // (503 kCancelled) — never silence.
  EXPECT_TRUE(StatusOf(live_response) == 200 || StatusOf(live_response) == 503)
      << live_response;
  const std::string midread_response = ReadResponse(midread.get());
  EXPECT_EQ(StatusOf(midread_response), 503) << midread_response;

  server_->Join();  // drain completes on its own; no Stop() needed
  EXPECT_FALSE(ConnectTcp("127.0.0.1", server_->port()).ok());
  EXPECT_EQ(server_->stats().drain_force_closed, 0u);
  EXPECT_EQ(server_->stats().active_connections, 0u);
}

TEST_F(NetServerTest, MetricsEndpointExposesEveryTierWellFormed) {
  StartServer();
  // Generate one real search so the engine/serve/http histograms all have
  // samples, then scrape.
  ASSERT_EQ(StatusOf(Exchange(
                "GET /search?q=publication HTTP/1.1\r\nConnection: close\r\n"
                "\r\n")),
            200);

  const std::string response =
      Exchange("GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
  ASSERT_EQ(StatusOf(response), 200);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::string body = response.substr(response.find("\r\n\r\n") + 4);

  // One registry spans the tiers: engine, serve, and http families all
  // present, with HELP/TYPE and samples.
  for (const char* needle :
       {"# TYPE grasp_engine_search_duration_seconds histogram",
        "grasp_engine_stage_duration_seconds_bucket{stage=\"exploration\",",
        "# TYPE grasp_serve_queue_wait_seconds histogram",
        "grasp_serve_service_seconds_count{lane=\"deep\"}",
        "# TYPE grasp_http_requests_total counter",
        "grasp_http_request_duration_seconds_bucket{class=\"2xx\","}) {
    EXPECT_NE(body.find(needle), std::string::npos) << needle;
  }

  // Every line is exposition-grammar shaped: a comment or "name[{labels}]
  // SP value".
  std::size_t start = 0;
  while (start < body.size()) {
    std::size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    const std::string line = body.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    ASSERT_GT(sp, 0u) << line;
    char* parse_end = nullptr;
    std::strtod(line.c_str() + sp + 1, &parse_end);
    EXPECT_EQ(*parse_end, '\0') << "unparsable value: " << line;
  }
}

TEST_F(NetServerTest, StatszIsCompleteJsonWithDeadlineHitAndNoTruncation) {
  StartServer();
  // The old renderer dropped `deadline_hit` (never serialized) and chopped
  // the body at 1024 bytes; the registry renderer must do neither.
  ASSERT_EQ(StatusOf(Exchange(
                "GET /search?q=publication HTTP/1.1\r\nX-Deadline-Ms: 5000\r\n"
                "Connection: close\r\n\r\n")),
            200);

  const std::string response =
      Exchange("GET /statsz HTTP/1.1\r\nConnection: close\r\n\r\n");
  ASSERT_EQ(StatusOf(response), 200);
  const std::string body = response.substr(response.find("\r\n\r\n") + 4);

  EXPECT_GT(body.size(), 1024u) << "registry render should dwarf the old cap";
  EXPECT_NE(body.find("grasp_serve_deadline_hit_total"), std::string::npos);
  EXPECT_NE(body.find("grasp_http_requests_total"), std::string::npos);

  // Structurally complete JSON: brace-balanced with no dangling string —
  // exactly what truncation used to break.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char ch = body[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(NetServerTest, SlowQueryLogCapturesServedQueries) {
  StartServer();
  ASSERT_EQ(StatusOf(Exchange(
                "GET /search?q=publication+aifb HTTP/1.1\r\n"
                "Connection: close\r\n\r\n")),
            200);

  const std::string response =
      Exchange("GET /debug/slowz HTTP/1.1\r\nConnection: close\r\n\r\n");
  ASSERT_EQ(StatusOf(response), 200);
  const std::string body = response.substr(response.find("\r\n\r\n") + 4);
  EXPECT_EQ(body.front(), '[');
  EXPECT_NE(body.find("\"keywords\":\"publication aifb\""), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"total_millis\":"), std::string::npos);
  EXPECT_NE(body.find("\"stop_reason\":\"completed\""), std::string::npos);
}

TEST_F(NetServerTest, ConcurrentScrapesUnderLiveTrafficStayRaceClean) {
  // Satellite regression: stats() used to read connections_.size() (loop-
  // thread-owned) from the caller's thread. Scrape /statsz + /metrics and
  // call stats() from several threads while searches flow; TSan runs this.
  QueryServer::Options serve_options;
  serve_options.deep_workers = 2;
  StartServer(serve_options);

  std::atomic<bool> stop{false};
  std::thread stats_poller([this, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const HttpServer::Stats stats = server_->stats();
      ASSERT_LE(stats.active_connections, 1024u);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread scraper([this, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      Exchange("GET /statsz HTTP/1.1\r\nConnection: close\r\n\r\n");
      Exchange("GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    }
  });

  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(StatusOf(Exchange(
                  "GET /search?q=publication HTTP/1.1\r\n"
                  "Connection: close\r\n\r\n")),
              200);
  }
  stop.store(true, std::memory_order_relaxed);
  stats_poller.join();
  scraper.join();

  const HttpServer::Stats stats = server_->stats();
  EXPECT_GE(stats.responses_2xx, 20u);
}

TEST_F(NetServerTest, QueryServerShutdownMapsTo503NotRetryable429) {
  // A shed with no retry hint means "stop asking", and the wire status must
  // say so: 503 without Retry-After, not a 429 inviting a retry storm
  // against a server that is going away.
  StartServer();
  query_server_->Shutdown();

  const std::string response = Exchange(
      "GET /search?q=publication HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(StatusOf(response), 503) << response;
  EXPECT_EQ(response.find("Retry-After:"), std::string::npos) << response;
  EXPECT_NE(response.find("UNAVAILABLE"), std::string::npos);
}

TEST_F(NetServerTest, ConnectionCapRejectsWithImmediate503) {
  HttpServer::Options http_options;
  http_options.max_connections = 1;
  StartServer({}, http_options);

  OwnedFd holder = Connect();
  ASSERT_TRUE(SendAll(holder.get(), "GET /healthz HTTP/1.1\r\n\r\n"));
  ASSERT_EQ(StatusOf(ReadResponse(holder.get())), 200);  // cap really is 1

  OwnedFd overflow = Connect();
  const std::string rejected = ReadResponse(overflow.get());
  EXPECT_EQ(StatusOf(rejected), 503) << rejected;
  ASSERT_TRUE(
      WaitFor([this] { return server_->stats().rejected_at_capacity >= 1; }));

  // The held connection still works; only the overflow was turned away.
  ASSERT_TRUE(SendAll(holder.get(),
                      "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"));
  EXPECT_EQ(StatusOf(ReadResponse(holder.get())), 200);
}

}  // namespace
}  // namespace grasp::net
