#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "query/conjunctive_query.h"
#include "query/evaluator.h"
#include "test_util.h"

namespace grasp::query {
namespace {

class QueryFixture : public ::testing::Test {
 protected:
  QueryFixture() : dataset_(grasp::testing::MakeFigure1Dataset()) {}

  rdf::TermId Iri(const std::string& local) {
    return dataset_.dictionary.InternIri(std::string(grasp::testing::kEx) +
                                         local);
  }
  rdf::TermId Lit(const std::string& text) {
    return dataset_.dictionary.InternLiteral(text);
  }
  rdf::TermId Type() {
    return dataset_.dictionary.InternIri(
        "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  }

  grasp::testing::Dataset dataset_;
};

// -------------------------------------------------------- Canonical form --

TEST_F(QueryFixture, IsomorphicUnderVariableRenaming) {
  ConjunctiveQuery a, b;
  const VarId a0 = a.NewVariable(), a1 = a.NewVariable();
  a.AddAtom({Iri("author"), QueryTerm::Variable(a0), QueryTerm::Variable(a1)});
  a.AddAtom({Iri("name"), QueryTerm::Variable(a1),
             QueryTerm::Constant(Lit("AIFB"))});

  const VarId b0 = b.NewVariable(), b1 = b.NewVariable();
  // Same structure, swapped variable roles and atom order.
  b.AddAtom({Iri("name"), QueryTerm::Variable(b0),
             QueryTerm::Constant(Lit("AIFB"))});
  b.AddAtom({Iri("author"), QueryTerm::Variable(b1), QueryTerm::Variable(b0)});

  EXPECT_TRUE(Isomorphic(a, b));
}

TEST_F(QueryFixture, DifferentStructureNotIsomorphic) {
  ConjunctiveQuery a, b;
  const VarId a0 = a.NewVariable(), a1 = a.NewVariable();
  a.AddAtom({Iri("author"), QueryTerm::Variable(a0), QueryTerm::Variable(a1)});

  const VarId b0 = b.NewVariable();
  b.AddAtom({Iri("author"), QueryTerm::Variable(b0), QueryTerm::Variable(b0)});
  EXPECT_FALSE(Isomorphic(a, b));
}

TEST_F(QueryFixture, DifferentConstantsNotIsomorphic) {
  ConjunctiveQuery a, b;
  a.AddAtom({Iri("name"), QueryTerm::Variable(a.NewVariable()),
             QueryTerm::Constant(Lit("AIFB"))});
  b.AddAtom({Iri("name"), QueryTerm::Variable(b.NewVariable()),
             QueryTerm::Constant(Lit("SJTU"))});
  EXPECT_FALSE(Isomorphic(a, b));
}

TEST_F(QueryFixture, CanonicalIgnoresUnusedVariables) {
  ConjunctiveQuery a, b;
  a.NewVariable();  // never used
  const VarId av = a.NewVariable();
  a.AddAtom({Iri("p"), QueryTerm::Variable(av), QueryTerm::Constant(Lit("x"))});
  const VarId bv = b.NewVariable();
  b.AddAtom({Iri("p"), QueryTerm::Variable(bv), QueryTerm::Constant(Lit("x"))});
  EXPECT_TRUE(Isomorphic(a, b));
}

TEST_F(QueryFixture, TriangleVsPathNotIsomorphic) {
  ConjunctiveQuery tri, path;
  const rdf::TermId p = Iri("p");
  {
    VarId x = tri.NewVariable(), y = tri.NewVariable(), z = tri.NewVariable();
    tri.AddAtom({p, QueryTerm::Variable(x), QueryTerm::Variable(y)});
    tri.AddAtom({p, QueryTerm::Variable(y), QueryTerm::Variable(z)});
    tri.AddAtom({p, QueryTerm::Variable(z), QueryTerm::Variable(x)});
  }
  {
    VarId x = path.NewVariable(), y = path.NewVariable(),
          z = path.NewVariable(), w = path.NewVariable();
    path.AddAtom({p, QueryTerm::Variable(x), QueryTerm::Variable(y)});
    path.AddAtom({p, QueryTerm::Variable(y), QueryTerm::Variable(z)});
    path.AddAtom({p, QueryTerm::Variable(z), QueryTerm::Variable(w)});
  }
  EXPECT_FALSE(Isomorphic(tri, path));
}

TEST_F(QueryFixture, DeduplicateAtomsRemovesRepeats) {
  ConjunctiveQuery q;
  const VarId x = q.NewVariable();
  Atom atom{Type(), QueryTerm::Variable(x),
            QueryTerm::Constant(Iri("Publication"))};
  q.AddAtom(atom);
  q.AddAtom(atom);
  q.AddAtom(atom);
  q.DeduplicateAtoms();
  EXPECT_EQ(q.atoms().size(), 1u);
}

TEST_F(QueryFixture, CanonicalStableUnderAtomShuffle) {
  Rng rng(99);
  ConjunctiveQuery base;
  std::vector<Atom> atoms;
  const VarId x = base.NewVariable(), y = base.NewVariable(),
              z = base.NewVariable();
  atoms.push_back({Type(), QueryTerm::Variable(x),
                   QueryTerm::Constant(Iri("Publication"))});
  atoms.push_back({Iri("author"), QueryTerm::Variable(x),
                   QueryTerm::Variable(y)});
  atoms.push_back({Iri("worksAt"), QueryTerm::Variable(y),
                   QueryTerm::Variable(z)});
  atoms.push_back({Iri("name"), QueryTerm::Variable(z),
                   QueryTerm::Constant(Lit("AIFB"))});
  for (const Atom& a : atoms) base.AddAtom(a);
  const std::string canonical = base.CanonicalString();
  for (int trial = 0; trial < 10; ++trial) {
    rng.Shuffle(&atoms);
    ConjunctiveQuery q;
    q.NewVariable();
    q.NewVariable();
    q.NewVariable();
    for (const Atom& a : atoms) q.AddAtom(a);
    EXPECT_EQ(q.CanonicalString(), canonical);
  }
}

// ------------------------------------------------------------ Rendering --

TEST_F(QueryFixture, SparqlRendering) {
  ConjunctiveQuery q;
  const VarId x = q.NewVariable(), y = q.NewVariable();
  q.AddAtom({Type(), QueryTerm::Variable(x),
             QueryTerm::Constant(Iri("Publication"))});
  q.AddAtom({Iri("year"), QueryTerm::Variable(x),
             QueryTerm::Constant(Lit("2006"))});
  q.AddAtom({Iri("author"), QueryTerm::Variable(x), QueryTerm::Variable(y)});
  const std::string sparql = q.ToSparql(dataset_.dictionary);
  EXPECT_NE(sparql.find("SELECT ?x0 ?x1 WHERE {"), std::string::npos);
  EXPECT_NE(sparql.find("?x0 <http://example.org/year> \"2006\" ."),
            std::string::npos);
  EXPECT_NE(sparql.find(
                "?x0 <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
                "<http://example.org/Publication> ."),
            std::string::npos);
}

TEST_F(QueryFixture, SparqlEscapesLiterals) {
  ConjunctiveQuery q;
  q.AddAtom({Iri("name"), QueryTerm::Variable(q.NewVariable()),
             QueryTerm::Constant(Lit("say \"hi\"\n"))});
  EXPECT_NE(q.ToSparql(dataset_.dictionary).find(R"("say \"hi\"\n")"),
            std::string::npos);
}

TEST_F(QueryFixture, ToStringUsesLocalNames) {
  ConjunctiveQuery q;
  q.AddAtom({Iri("worksAt"), QueryTerm::Variable(q.NewVariable()),
             QueryTerm::Constant(Iri("AIFB_Institute"))});
  const std::string s = q.ToString(dataset_.dictionary);
  EXPECT_NE(s.find("worksAt(?x0, AIFB_Institute)"), std::string::npos);
}

// ------------------------------------------------------------ Evaluator --

class EvaluatorTest : public QueryFixture {};

TEST_F(EvaluatorTest, EmptyQueryIsInvalid) {
  ConjunctiveQuery q;
  auto result = Evaluate(dataset_.store, q);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EvaluatorTest, GroundAtomPresent) {
  ConjunctiveQuery q;
  q.AddAtom({Iri("worksAt"), QueryTerm::Constant(Iri("re1")),
             QueryTerm::Constant(Iri("inst1"))});
  auto result = Evaluate(dataset_.store, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 1u);  // the empty binding
}

TEST_F(EvaluatorTest, GroundAtomAbsent) {
  ConjunctiveQuery q;
  q.AddAtom({Iri("worksAt"), QueryTerm::Constant(Iri("re1")),
             QueryTerm::Constant(Iri("inst2"))});
  auto result = Evaluate(dataset_.store, q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

TEST_F(EvaluatorTest, SingleAtomBindings) {
  ConjunctiveQuery q;
  const VarId x = q.NewVariable();
  q.AddAtom({Type(), QueryTerm::Variable(x),
             QueryTerm::Constant(Iri("Researcher"))});
  auto result = Evaluate(dataset_.store, q);
  ASSERT_TRUE(result.ok());
  std::set<std::string> names;
  for (const auto& row : result->rows) {
    names.insert(std::string(dataset_.dictionary.text(row[0])));
  }
  EXPECT_EQ(names, (std::set<std::string>{
                       std::string(grasp::testing::kEx) + "re1",
                       std::string(grasp::testing::kEx) + "re2"}));
}

TEST_F(EvaluatorTest, PaperExampleQuery) {
  // Fig. 1c: publications of 2006 by P. Cimiano who works at AIFB.
  ConjunctiveQuery q;
  const VarId x = q.NewVariable(), y = q.NewVariable(), z = q.NewVariable();
  q.AddAtom({Type(), QueryTerm::Variable(x),
             QueryTerm::Constant(Iri("Publication"))});
  q.AddAtom({Iri("year"), QueryTerm::Variable(x),
             QueryTerm::Constant(Lit("2006"))});
  q.AddAtom({Iri("author"), QueryTerm::Variable(x), QueryTerm::Variable(y)});
  q.AddAtom({Iri("name"), QueryTerm::Variable(y),
             QueryTerm::Constant(Lit("P._Cimiano"))});
  q.AddAtom({Iri("worksAt"), QueryTerm::Variable(y), QueryTerm::Variable(z)});
  q.AddAtom({Iri("name"), QueryTerm::Variable(z),
             QueryTerm::Constant(Lit("AIFB"))});
  auto result = Evaluate(dataset_.store, q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  ASSERT_EQ(result->variables.size(), 3u);
  EXPECT_EQ(dataset_.dictionary.text(result->rows[0][0]),
            std::string(grasp::testing::kEx) + "pub1");
  EXPECT_EQ(dataset_.dictionary.text(result->rows[0][1]),
            std::string(grasp::testing::kEx) + "re2");
  EXPECT_EQ(dataset_.dictionary.text(result->rows[0][2]),
            std::string(grasp::testing::kEx) + "inst1");
}

TEST_F(EvaluatorTest, LimitTruncates) {
  ConjunctiveQuery q;
  const VarId x = q.NewVariable(), y = q.NewVariable();
  q.AddAtom({Type(), QueryTerm::Variable(x), QueryTerm::Variable(y)});
  EvalOptions options;
  options.limit = 3;
  auto result = Evaluate(dataset_.store, q, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u);
  EXPECT_TRUE(result->truncated);
}

TEST_F(EvaluatorTest, MaxStepsTruncates) {
  ConjunctiveQuery q;
  const VarId x = q.NewVariable(), y = q.NewVariable();
  q.AddAtom({Type(), QueryTerm::Variable(x), QueryTerm::Variable(y)});
  EvalOptions options;
  options.max_steps = 2;
  auto result = Evaluate(dataset_.store, q, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated);
}

TEST_F(EvaluatorTest, SameVariableTwiceInAtom) {
  auto dataset = grasp::testing::MakeDataset({
      R"(a knows a)",
      R"(a knows b)",
      R"(b knows a)",
  });
  ConjunctiveQuery q;
  const VarId x = q.NewVariable();
  q.AddAtom({dataset.dictionary.Find(rdf::TermKind::kIri,
                                     std::string(grasp::testing::kEx) +
                                         "knows"),
             QueryTerm::Variable(x), QueryTerm::Variable(x)});
  auto result = Evaluate(dataset.store, q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);  // only a knows a
  EXPECT_EQ(dataset.dictionary.text(result->rows[0][0]),
            std::string(grasp::testing::kEx) + "a");
}

TEST_F(EvaluatorTest, CyclicQueryPattern) {
  auto dataset = grasp::testing::MakeDataset({
      R"(a p b)", R"(b p c)", R"(c p a)",  // 3-cycle
      R"(x p y)", R"(y p x)",              // 2-cycle
  });
  const rdf::TermId p = dataset.dictionary.Find(
      rdf::TermKind::kIri, std::string(grasp::testing::kEx) + "p");
  ConjunctiveQuery q;
  const VarId x = q.NewVariable(), y = q.NewVariable(), z = q.NewVariable();
  q.AddAtom({p, QueryTerm::Variable(x), QueryTerm::Variable(y)});
  q.AddAtom({p, QueryTerm::Variable(y), QueryTerm::Variable(z)});
  q.AddAtom({p, QueryTerm::Variable(z), QueryTerm::Variable(x)});
  auto result = Evaluate(dataset.store, q);
  ASSERT_TRUE(result.ok());
  // Exactly the 3 rotations of the triangle. The 2-cycle contributes
  // nothing: a closed walk of odd length cannot exist in a bipartite
  // component, so no assignment over {x,y} satisfies all three atoms.
  std::set<std::vector<rdf::TermId>> rows(result->rows.begin(),
                                          result->rows.end());
  EXPECT_EQ(rows.size(), 3u);
}

/// Property: the indexed evaluator agrees with a naive enumerate-all-
/// assignments oracle on random small graphs and random queries.
class EvaluatorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvaluatorPropertyTest, AgreesWithAssignmentOracle) {
  Rng rng(GetParam());
  auto dataset = grasp::testing::MakeRandomDataset(GetParam(), 3, 8, 14, 2, 6, 3);
  const auto& store = dataset.store;

  // Collect all terms appearing anywhere (candidate assignments).
  std::set<rdf::TermId> term_set;
  for (const auto& t : store.triples()) {
    term_set.insert(t.subject);
    term_set.insert(t.object);
  }
  std::vector<rdf::TermId> terms(term_set.begin(), term_set.end());
  std::vector<rdf::TermId> predicates;
  {
    std::set<rdf::TermId> preds;
    for (const auto& t : store.triples()) preds.insert(t.predicate);
    predicates.assign(preds.begin(), preds.end());
  }

  for (int trial = 0; trial < 10; ++trial) {
    // Random query: 1-3 atoms over <= 3 variables, random constants.
    ConjunctiveQuery q;
    const int num_vars = 1 + static_cast<int>(rng.NextBelow(3));
    std::vector<VarId> vars;
    for (int i = 0; i < num_vars; ++i) vars.push_back(q.NewVariable());
    const int num_atoms = 1 + static_cast<int>(rng.NextBelow(3));
    for (int i = 0; i < num_atoms; ++i) {
      auto random_term = [&]() {
        if (rng.NextBernoulli(0.7)) {
          return QueryTerm::Variable(vars[rng.NextBelow(vars.size())]);
        }
        return QueryTerm::Constant(terms[rng.NextBelow(terms.size())]);
      };
      q.AddAtom({predicates[rng.NextBelow(predicates.size())], random_term(),
                 random_term()});
    }

    auto result = Evaluate(store, q);
    ASSERT_TRUE(result.ok());

    // Oracle: enumerate every assignment of used variables to terms.
    std::set<VarId> used;
    for (const Atom& a : q.atoms()) {
      if (a.subject.is_variable) used.insert(a.subject.var);
      if (a.object.is_variable) used.insert(a.object.var);
    }
    std::vector<VarId> used_vars(used.begin(), used.end());
    std::set<std::vector<rdf::TermId>> expected;
    std::vector<rdf::TermId> assignment(q.num_variables(),
                                        rdf::kInvalidTermId);
    std::function<void(std::size_t)> enumerate = [&](std::size_t i) {
      if (i == used_vars.size()) {
        for (const Atom& a : q.atoms()) {
          const rdf::TermId s =
              a.subject.is_variable ? assignment[a.subject.var] : a.subject.term;
          const rdf::TermId o =
              a.object.is_variable ? assignment[a.object.var] : a.object.term;
          if (!store.Contains({s, a.predicate, o})) return;
        }
        std::vector<rdf::TermId> row;
        for (VarId v : used_vars) row.push_back(assignment[v]);
        expected.insert(row);
        return;
      }
      for (rdf::TermId t : terms) {
        assignment[used_vars[i]] = t;
        enumerate(i + 1);
      }
    };
    enumerate(0);

    std::set<std::vector<rdf::TermId>> actual(result->rows.begin(),
                                              result->rows.end());
    EXPECT_EQ(actual, expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorPropertyTest,
                         ::testing::Values(7, 17, 27, 37, 47, 57));

}  // namespace
}  // namespace grasp::query
