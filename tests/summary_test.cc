#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <set>

#include "keyword/keyword_index.h"
#include "rdf/data_graph.h"
#include "summary/augmented_graph.h"
#include "summary/summary_graph.h"
#include "test_util.h"

namespace grasp::summary {
namespace {

std::string Local(const rdf::Dictionary& d, rdf::TermId t) {
  if (t == rdf::kThingTerm) return "Thing";
  if (t == rdf::kInvalidTermId) return "<artificial>";
  return std::string(rdf::IriLocalName(d.text(t)));
}

class SummaryGraphTest : public ::testing::Test {
 protected:
  SummaryGraphTest()
      : dataset_(grasp::testing::MakeFigure1Dataset()),
        graph_(rdf::DataGraph::Build(dataset_.store, dataset_.dictionary)),
        summary_(SummaryGraph::Build(graph_)) {}

  NodeId NodeOf(const std::string& local_name) const {
    for (NodeId i = 0; i < summary_.nodes().size(); ++i) {
      if (Local(dataset_.dictionary, summary_.nodes()[i].term) == local_name) {
        return i;
      }
    }
    return kInvalidNodeId;
  }

  grasp::testing::Dataset dataset_;
  rdf::DataGraph graph_;
  SummaryGraph summary_;
};

TEST_F(SummaryGraphTest, OneNodePerClassNoThingWhenAllTyped) {
  // All 8 entities are typed, so no Thing node: 7 class nodes only.
  EXPECT_EQ(summary_.nodes().size(), 7u);
  EXPECT_EQ(summary_.thing_node(), kInvalidNodeId);
}

TEST_F(SummaryGraphTest, AggregationCounts) {
  EXPECT_EQ(summary_.nodes()[NodeOf("Publication")].agg_count, 2u);
  EXPECT_EQ(summary_.nodes()[NodeOf("Researcher")].agg_count, 2u);
  EXPECT_EQ(summary_.nodes()[NodeOf("Institute")].agg_count, 2u);
  EXPECT_EQ(summary_.nodes()[NodeOf("Project")].agg_count, 2u);
  EXPECT_EQ(summary_.nodes()[NodeOf("Agent")].agg_count, 0u);  // no instances
}

TEST_F(SummaryGraphTest, RelationEdgesProjectToClasses) {
  bool author_edge = false, works_at_edge = false;
  for (const SummaryEdge& e : summary_.edges()) {
    const std::string label = Local(dataset_.dictionary, e.label);
    const std::string from = Local(dataset_.dictionary, summary_.nodes()[e.from].term);
    const std::string to = Local(dataset_.dictionary, summary_.nodes()[e.to].term);
    if (label == "author" && from == "Publication" && to == "Researcher") {
      author_edge = true;
      EXPECT_EQ(e.agg_count, 2u);  // two author triples aggregate here
      EXPECT_EQ(e.kind, SummaryEdgeKind::kRelation);
    }
    if (label == "worksAt" && from == "Researcher" && to == "Institute") {
      works_at_edge = true;
      EXPECT_EQ(e.agg_count, 2u);
    }
  }
  EXPECT_TRUE(author_edge);
  EXPECT_TRUE(works_at_edge);
}

TEST_F(SummaryGraphTest, SubclassEdgesPreserved) {
  std::size_t subclass = 0;
  for (const SummaryEdge& e : summary_.edges()) {
    if (e.kind == SummaryEdgeKind::kSubclass) ++subclass;
  }
  EXPECT_EQ(subclass, 4u);
}

TEST_F(SummaryGraphTest, NoAttributeEdgesBeforeAugmentation) {
  for (const SummaryEdge& e : summary_.edges()) {
    EXPECT_NE(e.kind, SummaryEdgeKind::kAttribute);
  }
}

TEST_F(SummaryGraphTest, PopularityDenominators) {
  EXPECT_EQ(summary_.total_entities(), 8u);
  EXPECT_EQ(summary_.total_relation_edges(), 5u);
}

TEST_F(SummaryGraphTest, NodeOfTermLookup) {
  const rdf::TermId pub = dataset_.dictionary.Find(
      rdf::TermKind::kIri, std::string(grasp::testing::kEx) + "Publication");
  EXPECT_NE(summary_.NodeOfTerm(pub), kInvalidNodeId);
  EXPECT_EQ(summary_.NodeOfTerm(12345678), kInvalidNodeId);
}

TEST(SummaryGraphThingTest, UntypedEntitiesAggregateIntoThing) {
  auto dataset = grasp::testing::MakeDataset({
      R"(e1 a C)",
      R"(e1 knows e2)",
      R"(e2 knows e3)",
  });
  rdf::DataGraph graph =
      rdf::DataGraph::Build(dataset.store, dataset.dictionary);
  SummaryGraph summary = SummaryGraph::Build(graph);
  ASSERT_NE(summary.thing_node(), kInvalidNodeId);
  EXPECT_EQ(summary.nodes()[summary.thing_node()].agg_count, 2u);  // e2, e3
  // knows: C->Thing and Thing->Thing.
  std::set<std::pair<NodeId, NodeId>> pairs;
  for (const SummaryEdge& e : summary.edges()) {
    pairs.insert({e.from, e.to});
  }
  EXPECT_EQ(pairs.size(), 2u);
}

TEST(SummaryGraphMultiTypeTest, EntityWithTwoClassesProjectsToBoth) {
  auto dataset = grasp::testing::MakeDataset({
      R"(e1 a C1)",
      R"(e1 a C2)",
      R"(e2 a C3)",
      R"(e1 knows e2)",
  });
  rdf::DataGraph graph =
      rdf::DataGraph::Build(dataset.store, dataset.dictionary);
  SummaryGraph summary = SummaryGraph::Build(graph);
  std::size_t knows_edges = 0;
  for (const SummaryEdge& e : summary.edges()) {
    if (e.kind == SummaryEdgeKind::kRelation) ++knows_edges;
  }
  EXPECT_EQ(knows_edges, 2u);  // C1->C3 and C2->C3
}

/// Property (Def. 4): for every R-edge path in the data graph there is a
/// corresponding path in the summary graph.
class SummarySoundnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SummarySoundnessTest, EveryDataPathHasSummaryPath) {
  auto dataset = grasp::testing::MakeRandomDataset(GetParam(), 4, 14, 22, 3, 8, 4);
  rdf::DataGraph graph =
      rdf::DataGraph::Build(dataset.store, dataset.dictionary);
  SummaryGraph summary = SummaryGraph::Build(graph);

  // Summary edge lookup by (label, from, to).
  std::set<std::tuple<rdf::TermId, NodeId, NodeId>> summary_edges;
  for (const SummaryEdge& e : summary.edges()) {
    summary_edges.insert({e.label, e.from, e.to});
  }
  auto nodes_of_vertex = [&](rdf::VertexId v) {
    std::vector<NodeId> nodes;
    const rdf::Vertex& vertex = graph.vertex(v);
    if (vertex.kind == rdf::VertexKind::kClass) {
      nodes.push_back(summary.NodeOfTerm(vertex.term));
    } else {
      for (rdf::VertexId c : graph.ClassesOf(v)) {
        nodes.push_back(summary.NodeOfTerm(graph.vertex(c).term));
      }
      if (nodes.empty()) nodes.push_back(summary.thing_node());
    }
    return nodes;
  };

  // Check every single R-edge projects (paths compose edge-wise, so edge
  // soundness implies path soundness).
  for (const rdf::Edge& e : graph.edges()) {
    if (e.kind != rdf::EdgeKind::kRelation) continue;
    bool found = false;
    for (NodeId f : nodes_of_vertex(e.from)) {
      for (NodeId t : nodes_of_vertex(e.to)) {
        if (summary_edges.count({e.label, f, t}) > 0) found = true;
      }
    }
    EXPECT_TRUE(found) << "unprojected edge label "
                       << dataset.dictionary.text(e.label);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummarySoundnessTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

// -------------------------------------------------------- AugmentedGraph --

class AugmentedGraphTest : public ::testing::Test {
 protected:
  AugmentedGraphTest()
      : dataset_(grasp::testing::MakeFigure1Dataset()),
        graph_(rdf::DataGraph::Build(dataset_.store, dataset_.dictionary)),
        summary_(SummaryGraph::Build(graph_)),
        index_(keyword::KeywordIndex::Build(graph_)) {}

  std::vector<std::vector<keyword::KeywordMatch>> LookupAll(
      const std::vector<std::string>& keywords) const {
    text::InvertedIndex::SearchOptions options;
    std::vector<std::vector<keyword::KeywordMatch>> out;
    for (const auto& kw : keywords) out.push_back(index_.Lookup(kw, options));
    return out;
  }

  grasp::testing::Dataset dataset_;
  rdf::DataGraph graph_;
  SummaryGraph summary_;
  keyword::KeywordIndex index_;
};

TEST_F(AugmentedGraphTest, ValueKeywordAddsNodeAndEdge) {
  AugmentedGraph g = AugmentedGraph::Build(summary_, LookupAll({"2006"}));
  EXPECT_GT(g.NumNodes(), summary_.NumNodes());
  bool value_node = false, attribute_edge = false;
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    const SummaryNode& n = g.node(i);
    if (n.kind == NodeKind::kValue &&
        dataset_.dictionary.text(n.term) == "2006") {
      value_node = true;
    }
  }
  for (EdgeId i = 0; i < g.NumEdges(); ++i) {
    const SummaryEdge& e = g.edge(i);
    if (e.kind == SummaryEdgeKind::kAttribute &&
        Local(dataset_.dictionary, e.label) == "year") {
      attribute_edge = true;
      EXPECT_EQ(Local(dataset_.dictionary, g.node(e.from).term),
                "Publication");
    }
  }
  EXPECT_TRUE(value_node);
  EXPECT_TRUE(attribute_edge);
  ASSERT_EQ(g.num_keywords(), 1u);
  ASSERT_EQ(g.keyword_elements()[0].size(), 1u);
  EXPECT_TRUE(g.keyword_elements()[0][0].element.is_node());
}

TEST_F(AugmentedGraphTest, AttributeLabelKeywordAddsArtificialNode) {
  AugmentedGraph g = AugmentedGraph::Build(summary_, LookupAll({"year"}));
  bool artificial = false;
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    if (g.node(i).kind == NodeKind::kArtificial) artificial = true;
  }
  EXPECT_TRUE(artificial);
  // Keyword element is the edge, not the node.
  ASSERT_EQ(g.keyword_elements()[0].size(), 1u);
  EXPECT_TRUE(g.keyword_elements()[0][0].element.is_edge());
}

TEST_F(AugmentedGraphTest, AttributeLabelCoversConcreteAndArtificialEdges) {
  // Def. 5 rule 2: for "year 2006", the `year` keyword is represented both
  // by the concrete A-edge to the matched value 2006 (so the exploration
  // can merge the two keywords into one edge) and by an artificial-value
  // edge (the free-variable interpretation — the data graph contains year
  // values that are not keyword elements).
  AugmentedGraph g =
      AugmentedGraph::Build(summary_, LookupAll({"year", "2006"}));
  std::size_t artificial = 0;
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    if (g.node(i).kind == NodeKind::kArtificial) ++artificial;
  }
  EXPECT_EQ(artificial, 1u);
  ASSERT_EQ(g.num_keywords(), 2u);
  const auto& year_elements = g.keyword_elements()[0];
  ASSERT_EQ(year_elements.size(), 2u);
  bool concrete = false, free_value = false;
  for (const ScoredElement& se : year_elements) {
    ASSERT_TRUE(se.element.is_edge());
    const SummaryEdge& e = g.edge(se.element.index());
    if (g.node(e.to).kind == NodeKind::kValue) concrete = true;
    if (g.node(e.to).kind == NodeKind::kArtificial) free_value = true;
  }
  EXPECT_TRUE(concrete);
  EXPECT_TRUE(free_value);
  EXPECT_TRUE(g.keyword_elements()[1][0].element.is_node());
}

TEST_F(AugmentedGraphTest, ClassKeywordIsExistingNode) {
  AugmentedGraph g =
      AugmentedGraph::Build(summary_, LookupAll({"publication"}));
  EXPECT_EQ(g.NumNodes(), summary_.NumNodes());  // nothing added
  ASSERT_FALSE(g.keyword_elements()[0].empty());
  const auto& se = g.keyword_elements()[0][0];
  ASSERT_TRUE(se.element.is_node());
  EXPECT_EQ(Local(dataset_.dictionary, g.node(se.element.index()).term),
            "Publication");
}

TEST_F(AugmentedGraphTest, RelationLabelKeywordMarksEdges) {
  AugmentedGraph g = AugmentedGraph::Build(summary_, LookupAll({"author"}));
  ASSERT_FALSE(g.keyword_elements()[0].empty());
  for (const auto& se : g.keyword_elements()[0]) {
    ASSERT_TRUE(se.element.is_edge());
    EXPECT_EQ(Local(dataset_.dictionary, g.edge(se.element.index()).label),
              "author");
  }
}

TEST_F(AugmentedGraphTest, MatchScoresRecorded) {
  AugmentedGraph g = AugmentedGraph::Build(summary_, LookupAll({"cimano"}));
  ASSERT_FALSE(g.keyword_elements()[0].empty());
  const auto& se = g.keyword_elements()[0][0];
  EXPECT_LT(se.score, 1.0);
  EXPECT_GT(se.score, 0.0);
  EXPECT_DOUBLE_EQ(g.MatchScore(se.element), se.score);
}

TEST_F(AugmentedGraphTest, IncidentAdjacencyConsistent) {
  AugmentedGraph g =
      AugmentedGraph::Build(summary_, LookupAll({"2006", "aifb"}));
  std::size_t incidences = 0;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    for (EdgeId e : g.IncidentEdges(n)) {
      EXPECT_TRUE(g.edge(e).from == n || g.edge(e).to == n);
      ++incidences;
    }
  }
  std::size_t expected = 0;
  for (EdgeId i = 0; i < g.NumEdges(); ++i) {
    expected += (g.edge(i).from == g.edge(i).to) ? 1 : 2;
  }
  EXPECT_EQ(incidences, expected);
}

TEST_F(AugmentedGraphTest, GraphIsConnectedForFig1Keywords) {
  // The running example: all three keyword elements must be reachable from
  // each other in the augmented graph.
  AugmentedGraph g =
      AugmentedGraph::Build(summary_, LookupAll({"2006", "cimiano", "aifb"}));
  ASSERT_EQ(g.num_keywords(), 3u);
  for (const auto& k : g.keyword_elements()) ASSERT_FALSE(k.empty());

  // BFS over nodes from the first keyword element's node.
  auto start_node = [&](ElementId el) {
    return el.is_node() ? static_cast<NodeId>(el.index())
                        : g.edge(el.index()).from;
  };
  std::set<NodeId> visited;
  std::queue<NodeId> frontier;
  frontier.push(start_node(g.keyword_elements()[0][0].element));
  visited.insert(frontier.front());
  while (!frontier.empty()) {
    NodeId cur = frontier.front();
    frontier.pop();
    for (EdgeId e : g.IncidentEdges(cur)) {
      for (NodeId next : {g.edge(e).from, g.edge(e).to}) {
        if (visited.insert(next).second) frontier.push(next);
      }
    }
  }
  for (const auto& k : g.keyword_elements()) {
    EXPECT_TRUE(visited.count(start_node(k[0].element)) > 0);
  }
}

TEST_F(AugmentedGraphTest, DebugStringSmoke) {
  AugmentedGraph g = AugmentedGraph::Build(summary_, LookupAll({"2006"}));
  const auto& se = g.keyword_elements()[0][0];
  EXPECT_NE(g.DebugString(se.element, dataset_.dictionary).find("2006"),
            std::string::npos);
}

}  // namespace
}  // namespace grasp::summary
